"""Per-cell scoring: privacy exposure versus operational utility.

Each evaluation-matrix cell produces a collected snapshot series and a
supplemental campaign dataset; this module condenses them into one
:class:`CellScore`:

Privacy side (what the outside observer still learns):

* ``unique_names`` — given names recovered from sampled PTR records
  (:class:`~repro.core.names.GivenNameMatcher`, Section 5);
* ``dynamic_24s`` — /24s the dynamicity heuristic flags (Section 4);
* ``trackable_devices`` — matched device labels seen on enough
  distinct days to follow over time
  (:class:`~repro.core.tracking.DeviceTracker`, Section 7 — the
  "Brian" attack);
* ``lingering_median`` — how long departed devices' records linger
  (:func:`~repro.core.stats.lingering_summary`, Figure 7).

Utility side (what the operator still gets out of reverse DNS):

* ``resolution_success`` — share of campaign rDNS lookups that were
  *answered* (NOERROR or NXDOMAIN; SERVFAIL/TIMEOUT/REFUSED are
  failures);
* ``ptr_freshness`` — share of successfully observed activity groups
  whose PTR reverted after the device left (stale records are the
  operational cost the paper's Section 8 weighs against privacy).

Degenerate cells never raise: a zero-leak zone, a 0/1-sample
bootstrap or an empty lingering analysis flows through the PR 4
degenerate-stats handling (:class:`~repro.core.stats.Interval` with
``degenerate=True``) and surfaces as ``flags`` on the score, which the
ranked report renders instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dynamicity import DynamicityAnalyzer
from repro.core.grouping import GroupBuilder
from repro.core.names import GivenNameMatcher
from repro.core.stats import Interval, lingering_summary, proportion_ci
from repro.core.timing import lingering_analysis
from repro.core.tracking import DeviceTracker
from repro.dns.resolver import ResolutionStatus
from repro.eval.matrix import MatrixCell, MatrixSpec

#: Statuses that count as an *answered* reverse lookup: the zone spoke
#: authoritatively.  NXDOMAIN is an answer ("no record"), not a failure.
_ANSWERED = (ResolutionStatus.NOERROR, ResolutionStatus.NXDOMAIN)


def _finite(value: float) -> Optional[float]:
    """NaN → ``None`` so payloads stay strict JSON (no ``NaN`` tokens)."""
    return None if value != value else float(value)


def _interval_payload(interval: Interval) -> Dict[str, object]:
    return {
        "estimate": _finite(interval.estimate),
        "low": _finite(interval.low),
        "high": _finite(interval.high),
        "confidence": interval.confidence,
        "degenerate": interval.degenerate,
    }


@dataclass
class CellScore:
    """One cell's condensed outcome (everything the report renders)."""

    cell_id: str
    world: str
    policy: str
    faults: str
    # privacy
    unique_names: int
    dynamic_24s: int
    total_24s: int
    trackable_devices: int
    lingering_median: Interval
    lingering_samples: int
    # utility
    resolution_success: Interval
    ptr_freshness: Interval
    peak_records: int
    # composites
    exposure: float
    utility: float
    verdict: str
    flags: Tuple[str, ...]

    def to_payload(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "world": self.world,
            "policy": self.policy,
            "faults": self.faults,
            "privacy": {
                "unique_names": self.unique_names,
                "dynamic_24s": self.dynamic_24s,
                "total_24s": self.total_24s,
                "trackable_devices": self.trackable_devices,
                "lingering_median_minutes": _interval_payload(self.lingering_median),
                "lingering_samples": self.lingering_samples,
            },
            "utility": {
                "resolution_success": _interval_payload(self.resolution_success),
                "ptr_freshness": _interval_payload(self.ptr_freshness),
                "peak_records": self.peak_records,
            },
            "exposure": self.exposure,
            "utility_score": self.utility,
            "verdict": self.verdict,
            "flags": list(self.flags),
        }


def score_cell(cell: MatrixCell, spec: MatrixSpec, series, dataset) -> CellScore:
    """Score one cell from its collected series and campaign dataset."""
    flags: List[str] = []

    # -- privacy: dynamics (Section 4) -----------------------------------
    analyzer = DynamicityAnalyzer(spec.dynamicity_thresholds)
    dyn_report = analyzer.analyze(series)
    dynamic_24s = dyn_report.dynamic_count
    total_24s = dyn_report.total_observed

    # -- privacy: identities (Section 5) ---------------------------------
    matcher = GivenNameMatcher()
    sample_days = series.days[-spec.leak_sample_days:]
    names = set()
    for _, hostname in series.sample_records(sample_days):
        names.update(matcher.match(hostname))
    unique_names = len(names)
    if unique_names == 0:
        flags.append("zero-leaks")

    # -- privacy: trackability (Section 7) -------------------------------
    tracker = DeviceTracker(dataset.rdns)
    matched_names = sorted(
        {
            name
            for observation in dataset.rdns
            if observation.ok
            for name in matcher.match(observation.hostname)
        }
    )
    trackable_labels = set()
    for name in matched_names:
        for label, device in tracker.track(name).items():
            if len(device.days_seen()) >= spec.track_min_days:
                trackable_labels.add(label)
    trackable_devices = len(trackable_labels)

    # -- privacy: lingering windows (Figure 7) ---------------------------
    builder = GroupBuilder()
    groups = builder.build(dataset)
    usable = builder.usable(groups)
    analysis = lingering_analysis(usable)
    summary = lingering_summary(analysis)
    lingering_median = summary["median_minutes"]
    lingering_samples = len(analysis.minutes)
    if not groups:
        flags.append("no-groups")
    if lingering_median.degenerate:
        # Covers both the empty analysis and the 0/1-sample bootstrap.
        flags.append("lingering-degenerate")

    # -- utility: resolution success -------------------------------------
    total_lookups = len(dataset.rdns)
    answered = sum(
        1 for observation in dataset.rdns if observation.status in _ANSWERED
    )
    resolution_success = proportion_ci(answered, total_lookups)
    if resolution_success.degenerate:
        flags.append("no-rdns-observations")

    # -- utility: PTR freshness ------------------------------------------
    successful = [group for group in groups if group.successful]
    reverted = sum(1 for group in successful if group.reverted)
    ptr_freshness = proportion_ci(reverted, len(successful))
    if ptr_freshness.degenerate:
        flags.append("freshness-degenerate")

    daily_totals = series.daily_totals()
    peak_records = max(daily_totals.values()) if daily_totals else 0

    # -- composites -------------------------------------------------------
    identity = min(1.0, unique_names / max(1, spec.identity_norm))
    dynamics = min(1.0, dynamic_24s / max(1, spec.dynamics_norm))
    tracking = min(1.0, trackable_devices / max(1, spec.identity_norm))
    exposure = round((identity + dynamics + tracking) / 3.0, 4)

    utility_parts = [
        interval.estimate
        for interval in (resolution_success, ptr_freshness)
        if not interval.degenerate
    ]
    utility = round(sum(utility_parts) / len(utility_parts), 4) if utility_parts else 0.0

    if unique_names > 0 and dynamic_24s > 0:
        verdict = "identities+dynamics"
    elif dynamic_24s > 0:
        verdict = "dynamics"
    elif unique_names > 0:
        verdict = "identities"
    else:
        verdict = "none"

    return CellScore(
        cell_id=cell.cell_id,
        world=cell.world,
        policy=cell.policy,
        faults=cell.faults,
        unique_names=unique_names,
        dynamic_24s=dynamic_24s,
        total_24s=total_24s,
        trackable_devices=trackable_devices,
        lingering_median=lingering_median,
        lingering_samples=lingering_samples,
        resolution_success=resolution_success,
        ptr_freshness=ptr_freshness,
        peak_records=peak_records,
        exposure=exposure,
        utility=utility,
        verdict=verdict,
        flags=tuple(flags),
    )


def score_from_payload(payload: Dict[str, object]) -> CellScore:
    """Rebuild a :class:`CellScore` from :meth:`CellScore.to_payload`.

    The matrix runner's worker processes return score payloads (plain
    JSON-able dicts) rather than pickled dataclasses, so the
    coordinator — and anything replaying ``eval_matrix.json`` —
    reconstructs scores through this single path.
    """

    def number(value: object) -> float:
        return float("nan") if value is None else float(value)

    def interval(fields: Dict[str, object]) -> Interval:
        return Interval(
            estimate=number(fields["estimate"]),
            low=number(fields["low"]),
            high=number(fields["high"]),
            confidence=float(fields["confidence"]),
            degenerate=bool(fields["degenerate"]),
        )

    privacy = payload["privacy"]
    utility = payload["utility"]
    return CellScore(
        cell_id=payload["cell_id"],
        world=payload["world"],
        policy=payload["policy"],
        faults=payload["faults"],
        unique_names=int(privacy["unique_names"]),
        dynamic_24s=int(privacy["dynamic_24s"]),
        total_24s=int(privacy["total_24s"]),
        trackable_devices=int(privacy["trackable_devices"]),
        lingering_median=interval(privacy["lingering_median_minutes"]),
        lingering_samples=int(privacy["lingering_samples"]),
        resolution_success=interval(utility["resolution_success"]),
        ptr_freshness=interval(utility["ptr_freshness"]),
        peak_records=int(utility["peak_records"]),
        exposure=float(payload["exposure"]),
        utility=float(payload["utility_score"]),
        verdict=payload["verdict"],
        flags=tuple(payload["flags"]),
    )
