"""Domain names and ``in-addr.arpa`` reversal.

A :class:`DomainName` is an immutable sequence of labels, compared
case-insensitively, as prescribed by RFC 1035 (section 2.3.3).  The
module also provides :func:`reverse_pointer` / :func:`from_reverse_pointer`
for the IPv4 reverse-mapping namespace that the paper's measurements
query (Example 1: ``93.184.216.34`` -> ``34.216.184.93.in-addr.arpa.``).
"""

from __future__ import annotations

import ipaddress
from functools import lru_cache, total_ordering
from typing import Iterable, Iterator, Union

from repro.dns.errors import LabelError

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

_REVERSE_V4_SUFFIX = ("in-addr", "arpa")
_REVERSE_V6_SUFFIX = ("ip6", "arpa")


def _validate_label(label: str) -> str:
    if not label:
        raise LabelError("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise LabelError(f"label longer than {MAX_LABEL_LENGTH} octets: {label!r}")
    try:
        label.encode("ascii")
    except UnicodeEncodeError as exc:
        raise LabelError(f"label is not ASCII: {label!r}") from exc
    return label


@total_ordering
class DomainName:
    """An immutable, case-insensitive DNS domain name.

    The empty name is the DNS root.  Names print in their absolute form
    with a trailing dot.
    """

    __slots__ = ("_labels", "_key", "_text", "_hash")

    def __init__(self, labels: Iterable[str] = ()):
        labels = tuple(_validate_label(label) for label in labels)
        wire_length = sum(len(label) + 1 for label in labels) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise LabelError(f"name longer than {MAX_NAME_LENGTH} octets")
        self._labels = labels
        self._key = tuple(label.lower() for label in labels)
        self._text: "str | None" = None
        self._hash: "int | None" = None

    @classmethod
    def parse(cls, text: str) -> "DomainName":
        """Parse a dotted name; a trailing dot (absolute form) is allowed."""
        text = text.rstrip(".")
        if not text:
            return cls(())
        return cls(text.split("."))

    @property
    def labels(self) -> tuple:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        """The absolute textual form, with trailing dot (root is ``"."``)."""
        text = self._text
        if text is None:
            text = ".".join(self._labels) + "." if self._labels else "."
            self._text = text
        return text

    def relative_text(self) -> str:
        """The textual form without the trailing dot."""
        return ".".join(self._labels)

    def parent(self) -> "DomainName":
        """The name with its leftmost label removed."""
        if not self._labels:
            raise LabelError("the root name has no parent")
        return DomainName(self._labels[1:])

    def child(self, label: str) -> "DomainName":
        """A new name with ``label`` prepended."""
        return DomainName((label,) + self._labels)

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True if ``self`` equals ``other`` or sits below it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key):] == other._key

    def relativize(self, origin: "DomainName") -> tuple:
        """The labels of ``self`` with ``origin`` stripped from the right."""
        if not self.is_subdomain_of(origin):
            raise LabelError(f"{self} is not under {origin}")
        if not origin._labels:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def wire_length(self) -> int:
        """Uncompressed RFC 1035 wire length of this name, in octets."""
        return sum(len(label) + 1 for label in self._labels) + 1

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __hash__(self) -> int:
        # Names key delegation caches and PTR tables; hashing the label
        # tuple each probe showed up in sweep profiles.
        h = self._hash
        if h is None:
            h = self._hash = hash(self._key)
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "DomainName") -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        # Canonical DNS ordering compares names right to left.
        return self._key[::-1] < other._key[::-1]

    def __repr__(self) -> str:
        return f"DomainName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()


ROOT = DomainName(())
IN_ADDR_ARPA = DomainName(_REVERSE_V4_SUFFIX)
IP6_ARPA = DomainName(_REVERSE_V6_SUFFIX)

IPAddress = Union[str, int, ipaddress.IPv4Address, ipaddress.IPv6Address]


def _as_ip(address: IPAddress):
    if isinstance(address, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        return address
    return ipaddress.ip_address(address)


@lru_cache(maxsize=65536)
def _reverse_pointer_cached(ip) -> DomainName:
    # DomainName is immutable, so sharing instances across callers is
    # safe; sweeps re-query the same addresses every interval, which
    # makes this cache nearly always hot.
    if ip.version == 4:
        labels = tuple(str(ip).split(".")[::-1]) + _REVERSE_V4_SUFFIX
    else:
        nibbles = format(int(ip), "032x")
        labels = tuple(nibbles[::-1]) + _REVERSE_V6_SUFFIX
    return DomainName(labels)


def reverse_pointer(address: IPAddress) -> DomainName:
    """The PTR query name for an IP address.

    >>> reverse_pointer("93.184.216.34").to_text()
    '34.216.184.93.in-addr.arpa.'
    """
    return _reverse_pointer_cached(_as_ip(address))


def from_reverse_pointer(name: DomainName) -> ipaddress.IPv4Address:
    """Recover the IPv4 address from an ``in-addr.arpa`` name.

    Raises :class:`LabelError` for names outside the IPv4 reverse tree or
    with a wrong number of octet labels.
    """
    if not name.is_subdomain_of(IN_ADDR_ARPA):
        raise LabelError(f"{name} is not under {IN_ADDR_ARPA}")
    octet_labels = name.relativize(IN_ADDR_ARPA)
    if len(octet_labels) != 4:
        raise LabelError(f"expected 4 octet labels, got {len(octet_labels)}")
    try:
        octets = [int(label) for label in octet_labels]
    except ValueError as exc:
        raise LabelError(f"non-numeric octet label in {name}") from exc
    if any(not 0 <= octet <= 255 for octet in octets):
        raise LabelError(f"octet out of range in {name}")
    # Labels arrive least-significant first (d.c.b.a for a.b.c.d);
    # packing the integer directly skips ipaddress's string parser,
    # which dominated sweep profiles.
    packed = (octets[3] << 24) | (octets[2] << 16) | (octets[1] << 8) | octets[0]
    return ipaddress.IPv4Address(packed)


def reverse_zone_origin(prefix: Union[str, ipaddress.IPv4Network]) -> DomainName:
    """The conventional reverse-zone origin for an IPv4 prefix.

    Only octet-aligned prefixes (/8, /16, /24) have a single classless-free
    origin; other lengths are rounded down to the covering octet boundary,
    which matches how operators commonly delegate reverse space.  Zones
    for sub-/24 prefixes should use :func:`rfc2317_zone_origin` instead —
    the rounded origin here would claim the whole covering /24.
    """
    network = ipaddress.IPv4Network(prefix)
    kept_octets = network.prefixlen // 8
    octets = str(network.network_address).split(".")[:kept_octets]
    return DomainName(tuple(octets[::-1]) + _REVERSE_V4_SUFFIX)


def rfc2317_zone_label(prefix: Union[str, ipaddress.IPv4Network]) -> str:
    """The RFC 2317 child-zone label for a sub-/24 prefix.

    The customary ``<first>-<prefixlen>`` form (e.g. ``0-29`` for
    ``192.0.2.0/29``); RFC 2317 leaves the exact convention open, but
    this dash form is the one its examples use and the one MAAS-style
    zone generators emit.
    """
    network = ipaddress.IPv4Network(prefix)
    if network.prefixlen <= 24:
        raise LabelError(
            f"{network} is not a sub-/24 prefix; RFC 2317 delegation only "
            "applies below the /24 boundary"
        )
    first_octet = int(network.network_address) & 0xFF
    return f"{first_octet}-{network.prefixlen}"


def rfc2317_zone_origin(prefix: Union[str, ipaddress.IPv4Network]) -> DomainName:
    """The RFC 2317 classless reverse-zone origin for a sub-/24 prefix.

    >>> rfc2317_zone_origin("192.0.2.0/29").to_text()
    '0-29.2.0.192.in-addr.arpa.'
    """
    network = ipaddress.IPv4Network(prefix)
    label = rfc2317_zone_label(network)
    covering = network.supernet(new_prefix=24)
    return reverse_zone_origin(covering).child(label)
