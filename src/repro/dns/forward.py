"""Forward zones with dynamic update.

The paper's future work notes that "forward DNS data ... can also be
dynamically updated by DHCP servers" (Section 10), and RFC 4702's S
flag exists precisely so a client can ask the server to maintain its
A record.  :class:`ForwardZone` mirrors :class:`~repro.dns.zone.ReverseZone`
for name->address mappings so the IPAM bridge can keep both sides of
the DNS in sync — and so the forward side of the leak can be studied
with the same tooling.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode, RecordType
from repro.dns.records import DEFAULT_PTR_TTL, ResourceRecord, SoaData


class ForwardZone:
    """A forward zone holding dynamically updated A records."""

    def __init__(
        self,
        origin: str,
        *,
        primary_ns: str = "ns1.example.net",
        contact: str = "hostmaster.example.net",
        default_ttl: int = DEFAULT_PTR_TTL,
    ):
        self.origin = DomainName.parse(origin)
        if self.origin.is_root:
            raise ZoneError("a forward zone needs a non-root origin")
        self.default_ttl = default_ttl
        self._a: Dict[DomainName, ipaddress.IPv4Address] = {}
        self._soa = SoaData(
            mname=DomainName.parse(primary_ns),
            rname=DomainName.parse(contact),
            serial=1,
        )

    @property
    def serial(self) -> int:
        return self._soa.serial

    @property
    def soa_record(self) -> ResourceRecord:
        return ResourceRecord(self.origin, RecordType.SOA, self._soa, self.default_ttl)

    def _bump_serial(self) -> None:
        self._soa = SoaData(
            mname=self._soa.mname,
            rname=self._soa.rname,
            serial=self._soa.serial + 1,
            refresh=self._soa.refresh,
            retry=self._soa.retry,
            expire=self._soa.expire,
            minimum=self._soa.minimum,
        )

    def _require_in_zone(self, hostname: str) -> DomainName:
        name = DomainName.parse(hostname)
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is not under {self.origin}")
        return name

    # -- dynamic update -----------------------------------------------------

    def set_a(self, hostname: str, address) -> DomainName:
        """Add or replace the A record for ``hostname``."""
        name = self._require_in_zone(hostname)
        ip = ipaddress.IPv4Address(address)
        if self._a.get(name) != ip:
            self._a[name] = ip
            self._bump_serial()
        return name

    def remove_a(self, hostname: str) -> bool:
        """Remove the A record; True if one existed."""
        name = self._require_in_zone(hostname)
        if name in self._a:
            del self._a[name]
            self._bump_serial()
            return True
        return False

    # -- queries --------------------------------------------------------------

    def get_address(self, hostname: str) -> Optional[ipaddress.IPv4Address]:
        try:
            name = self._require_in_zone(hostname)
        except ZoneError:
            return None
        return self._a.get(name)

    def lookup(self, name: DomainName, rtype: RecordType) -> Tuple[Rcode, List[ResourceRecord]]:
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is not under {self.origin}")
        if name == self.origin and rtype == RecordType.SOA:
            return Rcode.NOERROR, [self.soa_record]
        address = self._a.get(name)
        if address is None:
            return Rcode.NXDOMAIN, []
        if rtype != RecordType.A:
            return Rcode.NOERROR, []
        return Rcode.NOERROR, [
            ResourceRecord(name, RecordType.A, address, self.default_ttl)
        ]

    def entries(self) -> Iterator[Tuple[DomainName, ipaddress.IPv4Address]]:
        for name in sorted(self._a):
            yield name, self._a[name]

    def __len__(self) -> int:
        return len(self._a)

    def __contains__(self, hostname: object) -> bool:
        try:
            return DomainName.parse(str(hostname)) in self._a
        except Exception:
            return False
