"""Reverse-DNS substrate.

This package implements the DNS machinery the paper's measurements run
against: domain names with ``in-addr.arpa`` reversal, resource records,
RFC 1035 wire-format messages, authoritative reverse zones with dynamic
update (the target of the DHCP/IPAM coupling), an authoritative server
with failure injection, and a stub resolver that queries authoritative
servers directly (cache-free, as the paper's supplemental measurement
does).
"""

from repro.dns.errors import (
    DnsError,
    LabelError,
    MessageFormatError,
    NoSuchZoneError,
    ZoneError,
)
from repro.dns.message import DnsMessage, Question
from repro.dns.name import (
    DomainName,
    from_reverse_pointer,
    reverse_pointer,
    reverse_zone_origin,
    rfc2317_zone_origin,
)
from repro.dns.rcode import Opcode, Rcode, RecordClass, RecordType
from repro.dns.records import ResourceRecord, RRset, make_ptr
from repro.dns.resolver import ResolutionResult, ResolutionStatus, ServerHealth, StubResolver
from repro.dns.server import AuthoritativeServer, FailureModel, ServerBehavior
from repro.dns.zone import RdnsMode, ReverseZone, ZoneChange, ZoneChangeKind

__all__ = [
    "AuthoritativeServer",
    "DnsError",
    "DnsMessage",
    "DomainName",
    "FailureModel",
    "LabelError",
    "MessageFormatError",
    "NoSuchZoneError",
    "Opcode",
    "Question",
    "Rcode",
    "RdnsMode",
    "RecordClass",
    "RecordType",
    "ResolutionResult",
    "ResolutionStatus",
    "ResourceRecord",
    "ReverseZone",
    "RRset",
    "ServerBehavior",
    "ServerHealth",
    "StubResolver",
    "ZoneChange",
    "ZoneChangeKind",
    "ZoneError",
    "from_reverse_pointer",
    "make_ptr",
    "reverse_pointer",
    "reverse_zone_origin",
    "rfc2317_zone_origin",
]
