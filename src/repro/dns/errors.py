"""Exception hierarchy for the DNS substrate."""


class DnsError(Exception):
    """Base class for all DNS substrate errors."""


class LabelError(DnsError, ValueError):
    """A domain-name label violates RFC 1035 length or syntax rules."""


class MessageFormatError(DnsError, ValueError):
    """A DNS message could not be encoded or decoded."""


class ZoneError(DnsError):
    """A zone operation failed (e.g. name outside the zone origin)."""


class NoSuchZoneError(ZoneError, KeyError):
    """The server holds no zone that is authoritative for the query name."""
