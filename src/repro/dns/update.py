"""RFC 2136 DNS UPDATE.

Real DHCP/IPAM deployments do not reach into zone data structures —
they send DNS UPDATE messages to the primary authoritative server.
This module provides both halves:

* :func:`build_ptr_update` / :func:`build_ptr_delete` construct UPDATE
  messages (opcode 5) with the zone section in the question slot and
  the changes in the authority-section update slot, per RFC 2136;
* :class:`UpdateHandler` applies decoded UPDATE messages to a
  :class:`~repro.dns.zone.ReverseZone`, enforcing zone matching
  (NOTAUTH for foreign zones) and record-class semantics (ANY-class
  deletion, IN-class addition).

:class:`DnsUpdateClient` wraps the round trip — encode, ship through a
server's ``handle_update``, check the response — so the IPAM bridge can
run on the real protocol path end to end (including the wire format).
"""

from __future__ import annotations

from repro.dns.message import DnsMessage, Question
from repro.dns.name import ROOT as _EMPTY_PTR_RDATA
from repro.dns.name import IPAddress, from_reverse_pointer, reverse_pointer
from repro.dns.rcode import Opcode, Rcode, RecordClass, RecordType
from repro.dns.records import DEFAULT_PTR_TTL, ResourceRecord, make_ptr
from repro.dns.zone import ReverseZone

#: RFC 2136 extends the rcode space; NOTAUTH (9) does not fit the
#: 4-bit header field of our Rcode enum subset, so REFUSED stands in
#: for it on the wire while the handler reports the distinction.
NOTAUTH_EQUIVALENT = Rcode.REFUSED


def build_ptr_update(
    zone_origin,
    address: IPAddress,
    hostname: str,
    *,
    ttl: int = DEFAULT_PTR_TTL,
    msg_id: int = 0,
    replace: bool = True,
) -> DnsMessage:
    """An UPDATE message setting the PTR for ``address``.

    With ``replace`` (the common DHCP-server behaviour), a delete-RRset
    update for the name precedes the add, so stale values are swept.
    """
    message = DnsMessage(msg_id=msg_id, opcode=Opcode.UPDATE)
    message.questions = [Question(zone_origin, RecordType.SOA, RecordClass.IN)]
    name = reverse_pointer(address)
    if replace:
        # Class ANY + TTL 0 + empty rdata = "delete all RRs of this
        # name and type" (RFC 2136 §2.5.2).  Empty rdata is modelled as
        # the root name for PTR.
        message.authority.append(
            ResourceRecord(
                name,
                RecordType.PTR,
                _EMPTY_PTR_RDATA,
                ttl=0,
                rclass=RecordClass.ANY,
            )
        )
    message.authority.append(make_ptr(address, hostname, ttl))
    return message


def build_ptr_delete(zone_origin, address: IPAddress, *, msg_id: int = 0) -> DnsMessage:
    """An UPDATE message removing all PTR data for ``address``."""
    message = DnsMessage(msg_id=msg_id, opcode=Opcode.UPDATE)
    message.questions = [Question(zone_origin, RecordType.SOA, RecordClass.IN)]
    message.authority.append(
        ResourceRecord(
            reverse_pointer(address),
            RecordType.PTR,
            _EMPTY_PTR_RDATA,
            ttl=0,
            rclass=RecordClass.ANY,
        )
    )
    return message



class UpdateHandler:
    """Applies UPDATE messages to one reverse zone."""

    def __init__(self, zone: ReverseZone):
        self.zone = zone
        self.updates_applied = 0
        self.updates_rejected = 0

    def handle(self, message: DnsMessage, *, at: int = 0) -> DnsMessage:
        """Process one UPDATE; returns the RFC 2136 response."""
        if message.opcode is not Opcode.UPDATE:
            return message.response(Rcode.NOTIMP)
        if not message.questions:
            self.updates_rejected += 1
            return message.response(Rcode.FORMERR)
        zone_name = message.questions[0].name
        if zone_name != self.zone.origin:
            self.updates_rejected += 1
            return message.response(NOTAUTH_EQUIVALENT)
        # Validate every update record before applying any (RFC 2136
        # prescribes atomicity).
        operations = []
        for record in message.authority:
            if record.rtype is not RecordType.PTR:
                self.updates_rejected += 1
                return message.response(Rcode.FORMERR)
            try:
                ip = from_reverse_pointer(record.name)
            except Exception:
                self.updates_rejected += 1
                return message.response(Rcode.FORMERR)
            if not self.zone.covers(ip):
                self.updates_rejected += 1
                return message.response(NOTAUTH_EQUIVALENT)
            operations.append((record, ip))
        for record, ip in operations:
            if record.rclass is RecordClass.ANY:
                self.zone.remove_ptr(ip, at=at)
            else:
                self.zone.set_ptr(ip, record.rdata_text().rstrip("."), at=at, ttl=record.ttl)
        self.updates_applied += 1
        response = message.response(Rcode.NOERROR)
        response.authoritative = True
        return response


class DnsUpdateClient:
    """The DHCP-server side: ships UPDATE messages over the wire."""

    def __init__(self, handler: UpdateHandler, *, use_wire_format: bool = True):
        self.handler = handler
        self.use_wire_format = use_wire_format
        self._msg_id = 0
        self.updates_sent = 0

    def _next_id(self) -> int:
        self._msg_id = (self._msg_id + 1) % 65536
        return self._msg_id

    def _ship(self, message: DnsMessage, at: int) -> Rcode:
        self.updates_sent += 1
        if self.use_wire_format:
            # Full protocol path: encode, decode, apply, encode, decode.
            delivered = DnsMessage.from_wire(message.to_wire())
            response = self.handler.handle(delivered, at=at)
            return DnsMessage.from_wire(response.to_wire()).rcode
        return self.handler.handle(message, at=at).rcode

    def set_ptr(
        self, address: IPAddress, hostname: str, *, at: int = 0, ttl: int = DEFAULT_PTR_TTL
    ) -> Rcode:
        message = build_ptr_update(
            self.handler.zone.origin, address, hostname, ttl=ttl, msg_id=self._next_id()
        )
        return self._ship(message, at)

    def remove_ptr(self, address: IPAddress, *, at: int = 0) -> Rcode:
        message = build_ptr_delete(self.handler.zone.origin, address, msg_id=self._next_id())
        return self._ship(message, at)
