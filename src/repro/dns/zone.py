"""Authoritative reverse zones with dynamic update and a change journal.

A :class:`ReverseZone` is the DNS-side endpoint of the DHCP/IPAM
coupling the paper studies: IPAM systems add a PTR record when a lease
is bound and remove (or revert) it when the lease is released or
expires.  Every mutation bumps the SOA serial and is appended to a
journal, so measurements and analyses can be validated against zone
ground truth.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.dns.errors import ZoneError
from repro.dns.name import (
    DomainName,
    IPAddress,
    from_reverse_pointer,
    reverse_zone_origin,
)
from repro.dns.rcode import Rcode, RecordType
from repro.dns.records import DEFAULT_PTR_TTL, ResourceRecord, SoaData, make_ptr


class ZoneChangeKind(enum.Enum):
    ADD = "add"
    REMOVE = "remove"
    REPLACE = "replace"


@dataclass(frozen=True)
class ZoneChange:
    """One journal entry: a PTR added, removed or replaced at ``at``."""

    at: int
    kind: ZoneChangeKind
    address: ipaddress.IPv4Address
    old_hostname: Optional[str]
    new_hostname: Optional[str]


class ReverseZone:
    """A reverse (``in-addr.arpa``) zone for one IPv4 prefix.

    PTR content is keyed by IP address.  ``lookup`` answers like an
    authoritative server data-path would: NOERROR with records,
    NXDOMAIN for in-zone names with no data, and raises
    :class:`ZoneError` for out-of-zone names (the server maps that to
    REFUSED).
    """

    def __init__(
        self,
        prefix: Union[str, ipaddress.IPv4Network],
        *,
        primary_ns: str = "ns1.example.net",
        contact: str = "hostmaster.example.net",
        default_ttl: int = DEFAULT_PTR_TTL,
    ):
        self.prefix = ipaddress.IPv4Network(prefix)
        self.origin = reverse_zone_origin(self.prefix)
        self.default_ttl = default_ttl
        self._ptr: Dict[ipaddress.IPv4Address, ResourceRecord] = {}
        self._journal: List[ZoneChange] = []
        self._soa = SoaData(
            mname=DomainName.parse(primary_ns),
            rname=DomainName.parse(contact),
            serial=1,
        )

    # -- identity -------------------------------------------------------

    @property
    def serial(self) -> int:
        return self._soa.serial

    @property
    def soa_record(self) -> ResourceRecord:
        return ResourceRecord(self.origin, RecordType.SOA, self._soa, self.default_ttl)

    def covers(self, address: IPAddress) -> bool:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        return address in self.prefix

    def is_authoritative_for(self, name: DomainName) -> bool:
        return name.is_subdomain_of(self.origin)

    def _require_covered(self, address: IPAddress) -> ipaddress.IPv4Address:
        # Callers on the lease-churn path already hold IPv4Address
        # objects; re-parsing them through ip_address() goes via str()
        # and octet parsing, which profiled as a top-five cost.
        if isinstance(address, ipaddress.IPv4Address):
            ip = address
        else:
            ip = ipaddress.ip_address(address)
        if ip not in self.prefix:
            raise ZoneError(f"{ip} is outside zone prefix {self.prefix}")
        return ip

    def _bump_serial(self) -> None:
        self._soa = SoaData(
            mname=self._soa.mname,
            rname=self._soa.rname,
            serial=self._soa.serial + 1,
            refresh=self._soa.refresh,
            retry=self._soa.retry,
            expire=self._soa.expire,
            minimum=self._soa.minimum,
        )

    # -- dynamic update ---------------------------------------------------

    def set_ptr(
        self,
        address: IPAddress,
        hostname: str,
        *,
        at: int = 0,
        ttl: Optional[int] = None,
    ) -> ZoneChange:
        """Add or replace the PTR record for ``address``.

        Replacing with an identical hostname is a no-op journal-wise but
        is still accepted (DHCP renewals re-assert the record).
        """
        ip = self._require_covered(address)
        record = make_ptr(ip, hostname, ttl if ttl is not None else self.default_ttl)
        previous = self._ptr.get(ip)
        old_hostname = previous.rdata_text().rstrip(".") if previous else None
        new_hostname = record.rdata_text().rstrip(".")
        if previous is not None and old_hostname == new_hostname:
            change = ZoneChange(at, ZoneChangeKind.REPLACE, ip, old_hostname, new_hostname)
            return change
        self._ptr[ip] = record
        self._bump_serial()
        kind = ZoneChangeKind.REPLACE if previous is not None else ZoneChangeKind.ADD
        change = ZoneChange(at, kind, ip, old_hostname, new_hostname)
        self._journal.append(change)
        return change

    def remove_ptr(self, address: IPAddress, *, at: int = 0) -> Optional[ZoneChange]:
        """Remove the PTR record for ``address``; None if there was none."""
        ip = self._require_covered(address)
        previous = self._ptr.pop(ip, None)
        if previous is None:
            return None
        self._bump_serial()
        change = ZoneChange(
            at, ZoneChangeKind.REMOVE, ip, previous.rdata_text().rstrip("."), None
        )
        self._journal.append(change)
        return change

    # -- queries ----------------------------------------------------------

    def get_ptr(self, address: IPAddress) -> Optional[ResourceRecord]:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        return self._ptr.get(address)

    def get_hostname(self, address: IPAddress) -> Optional[str]:
        record = self.get_ptr(address)
        if record is None:
            return None
        return record.rdata_text().rstrip(".")

    def lookup(self, name: DomainName, rtype: RecordType) -> Tuple[Rcode, List[ResourceRecord]]:
        """Authoritative data-path lookup.

        Returns (rcode, answer records).  Raises :class:`ZoneError` if
        the name is not under this zone's origin.
        """
        if not self.is_authoritative_for(name):
            raise ZoneError(f"{name} is not under {self.origin}")
        if name == self.origin and rtype == RecordType.SOA:
            return Rcode.NOERROR, [self.soa_record]
        try:
            ip = from_reverse_pointer(name)
        except Exception:
            return Rcode.NXDOMAIN, []
        record = self._ptr.get(ip)
        if record is None:
            return Rcode.NXDOMAIN, []
        if rtype != RecordType.PTR:
            # NODATA: the name exists but holds no data of this type.
            return Rcode.NOERROR, []
        return Rcode.NOERROR, [record]

    # -- introspection ------------------------------------------------------

    @property
    def journal(self) -> List[ZoneChange]:
        return list(self._journal)

    def records(self) -> Iterator[ResourceRecord]:
        """All PTR records, in address order."""
        for ip in sorted(self._ptr):
            yield self._ptr[ip]

    def entries(self) -> Iterator[Tuple[ipaddress.IPv4Address, str]]:
        """(address, hostname) pairs, in address order."""
        for ip in sorted(self._ptr):
            yield ip, self._ptr[ip].rdata_text().rstrip(".")

    def __len__(self) -> int:
        return len(self._ptr)

    def __contains__(self, address: object) -> bool:
        if isinstance(address, ipaddress.IPv4Address):
            return address in self._ptr
        try:
            ip = ipaddress.ip_address(address)  # type: ignore[arg-type]
        except ValueError:
            return False
        return ip in self._ptr

    def __repr__(self) -> str:
        return f"ReverseZone({self.prefix}, {len(self)} PTRs, serial={self.serial})"
