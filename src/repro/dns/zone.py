"""Authoritative reverse zones with dynamic update and a change journal.

A :class:`ReverseZone` is the DNS-side endpoint of the DHCP/IPAM
coupling the paper studies: IPAM systems add a PTR record when a lease
is bound and remove (or revert) it when the lease is released or
expires.  Every mutation bumps the SOA serial and is appended to a
journal, so measurements and analyses can be validated against zone
ground truth.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.dns.errors import ZoneError
from repro.dns.name import (
    DomainName,
    IPAddress,
    from_reverse_pointer,
    reverse_pointer,
    reverse_zone_origin,
    rfc2317_zone_origin,
)
from repro.dns.rcode import Rcode, RecordType
from repro.dns.records import DEFAULT_PTR_TTL, ResourceRecord, SoaData, make_ptr


class RdnsMode(enum.Enum):
    """Per-subnet reverse-DNS publication mode (the MAAS subnet model).

    DISABLED subnets publish no PTR records at all; ENABLED subnets
    publish into the conventional octet-aligned reverse zone; RFC2317
    subnets are served from a classless child zone reached through
    CNAME glue in the covering /24 zone.
    """

    DISABLED = "disabled"
    ENABLED = "enabled"
    RFC2317 = "rfc2317"

    @classmethod
    def parse(cls, value: "Union[str, RdnsMode]") -> "RdnsMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            options = "/".join(mode.value for mode in cls)
            raise ValueError(f"unknown rdns mode {value!r} (expected {options})") from exc


class ZoneChangeKind(enum.Enum):
    ADD = "add"
    REMOVE = "remove"
    REPLACE = "replace"


@dataclass(frozen=True)
class ZoneChange:
    """One journal entry: a PTR added, removed or replaced at ``at``."""

    at: int
    kind: ZoneChangeKind
    address: ipaddress.IPv4Address
    old_hostname: Optional[str]
    new_hostname: Optional[str]


class ReverseZone:
    """A reverse (``in-addr.arpa``) zone for one IPv4 prefix.

    PTR content is keyed by IP address.  ``lookup`` answers like an
    authoritative server data-path would: NOERROR with records,
    NXDOMAIN for in-zone names with no data, and raises
    :class:`ZoneError` for out-of-zone names (the server maps that to
    REFUSED).
    """

    def __init__(
        self,
        prefix: Union[str, ipaddress.IPv4Network],
        *,
        primary_ns: str = "ns1.example.net",
        contact: str = "hostmaster.example.net",
        default_ttl: int = DEFAULT_PTR_TTL,
    ):
        self.prefix = ipaddress.IPv4Network(prefix)
        #: Sub-/24 prefixes are served as RFC 2317 classless child zones
        #: (``0-29.2.0.192.in-addr.arpa.``); octet-aligned prefixes get the
        #: conventional origin.
        self.rfc2317 = self.prefix.prefixlen > 24
        #: A non-octet-aligned prefix between /8 and /24 has no origin of
        #: its own: the zone claims the whole covering octet boundary, so
        #: two sibling zones would collide on it and mis-parent PTRs.
        #: Lookups here stay correct (out-of-prefix names answer
        #: NXDOMAIN), but world plans treat a rounded origin as a
        #: validation error unless the layout delegates per-/24 children.
        self.origin_rounded = not self.rfc2317 and self.prefix.prefixlen % 8 != 0
        if self.rfc2317:
            self.origin = rfc2317_zone_origin(self.prefix)
        else:
            self.origin = reverse_zone_origin(self.prefix)
        self.default_ttl = default_ttl
        self._ptr: Dict[ipaddress.IPv4Address, ResourceRecord] = {}
        #: RFC 2317 CNAME glue hosted by this zone (covering-/24 side),
        #: keyed by the conventional parent-form reverse name.
        self._cnames: Dict[DomainName, ResourceRecord] = {}
        self._journal: List[ZoneChange] = []
        self._soa = SoaData(
            mname=DomainName.parse(primary_ns),
            rname=DomainName.parse(contact),
            serial=1,
        )

    # -- identity -------------------------------------------------------

    @property
    def serial(self) -> int:
        return self._soa.serial

    @property
    def soa_record(self) -> ResourceRecord:
        return ResourceRecord(self.origin, RecordType.SOA, self._soa, self.default_ttl)

    def covers(self, address: IPAddress) -> bool:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        return address in self.prefix

    def is_authoritative_for(self, name: DomainName) -> bool:
        return name.is_subdomain_of(self.origin)

    def name_for(self, address: IPAddress) -> DomainName:
        """The owner name a PTR for ``address`` has in this zone.

        The conventional 4-octet reverse name for classic zones; the
        RFC 2317 child form (``10.0-29.2.0.192.in-addr.arpa.``) when the
        zone is a classless delegation.
        """
        ip = self._require_covered(address)
        if not self.rfc2317:
            return reverse_pointer(ip)
        return self.origin.child(str(int(ip) & 0xFF))

    def address_for_name(self, name: DomainName) -> Optional[ipaddress.IPv4Address]:
        """The address a PTR owner name refers to, or None if malformed.

        Accepts both the conventional 4-octet form (classic zones) and
        the single-octet-under-origin RFC 2317 child form.  Names that
        parse but fall outside the zone prefix also return None.
        """
        if self.rfc2317:
            try:
                labels = name.relativize(self.origin)
            except Exception:
                return None
            if len(labels) != 1 or not labels[0].isdigit():
                return None
            octet = int(labels[0])
            if octet > 255:
                return None
            ip = ipaddress.IPv4Address((int(self.prefix.network_address) & ~0xFF) | octet)
        else:
            try:
                ip = from_reverse_pointer(name)
            except Exception:
                return None
        if ip not in self.prefix:
            return None
        return ip

    def _require_covered(self, address: IPAddress) -> ipaddress.IPv4Address:
        # Callers on the lease-churn path already hold IPv4Address
        # objects; re-parsing them through ip_address() goes via str()
        # and octet parsing, which profiled as a top-five cost.
        if isinstance(address, ipaddress.IPv4Address):
            ip = address
        else:
            ip = ipaddress.ip_address(address)
        if ip not in self.prefix:
            raise ZoneError(f"{ip} is outside zone prefix {self.prefix}")
        return ip

    def _bump_serial(self) -> None:
        self._soa = SoaData(
            mname=self._soa.mname,
            rname=self._soa.rname,
            serial=self._soa.serial + 1,
            refresh=self._soa.refresh,
            retry=self._soa.retry,
            expire=self._soa.expire,
            minimum=self._soa.minimum,
        )

    # -- dynamic update ---------------------------------------------------

    def set_ptr(
        self,
        address: IPAddress,
        hostname: str,
        *,
        at: int = 0,
        ttl: Optional[int] = None,
    ) -> ZoneChange:
        """Add or replace the PTR record for ``address``.

        Replacing with an identical hostname is a no-op journal-wise but
        is still accepted (DHCP renewals re-assert the record).
        """
        ip = self._require_covered(address)
        effective_ttl = ttl if ttl is not None else self.default_ttl
        if self.rfc2317:
            record = ResourceRecord(
                name=self.name_for(ip),
                rtype=RecordType.PTR,
                rdata=DomainName.parse(hostname),
                ttl=effective_ttl,
            )
        else:
            record = make_ptr(ip, hostname, effective_ttl)
        previous = self._ptr.get(ip)
        old_hostname = previous.rdata_text().rstrip(".") if previous else None
        new_hostname = record.rdata_text().rstrip(".")
        if previous is not None and old_hostname == new_hostname:
            change = ZoneChange(at, ZoneChangeKind.REPLACE, ip, old_hostname, new_hostname)
            return change
        self._ptr[ip] = record
        self._bump_serial()
        kind = ZoneChangeKind.REPLACE if previous is not None else ZoneChangeKind.ADD
        change = ZoneChange(at, kind, ip, old_hostname, new_hostname)
        self._journal.append(change)
        return change

    def remove_ptr(self, address: IPAddress, *, at: int = 0) -> Optional[ZoneChange]:
        """Remove the PTR record for ``address``; None if there was none."""
        ip = self._require_covered(address)
        previous = self._ptr.pop(ip, None)
        if previous is None:
            return None
        self._bump_serial()
        change = ZoneChange(
            at, ZoneChangeKind.REMOVE, ip, previous.rdata_text().rstrip("."), None
        )
        self._journal.append(change)
        return change

    # -- queries ----------------------------------------------------------

    def get_ptr(self, address: IPAddress) -> Optional[ResourceRecord]:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        return self._ptr.get(address)

    def get_hostname(self, address: IPAddress) -> Optional[str]:
        record = self.get_ptr(address)
        if record is None:
            return None
        return record.rdata_text().rstrip(".")

    def lookup(self, name: DomainName, rtype: RecordType) -> Tuple[Rcode, List[ResourceRecord]]:
        """Authoritative data-path lookup.

        Returns (rcode, answer records).  Raises :class:`ZoneError` if
        the name is not under this zone's origin.
        """
        if not self.is_authoritative_for(name):
            raise ZoneError(f"{name} is not under {self.origin}")
        if name == self.origin and rtype == RecordType.SOA:
            return Rcode.NOERROR, [self.soa_record]
        glue = self._cnames.get(name)
        if glue is not None:
            # A CNAME answers a query for any type at its owner name; the
            # resolver restarts the question at the target (RFC 1034 §3.6.2).
            return Rcode.NOERROR, [glue]
        ip = self.address_for_name(name)
        if ip is None:
            return Rcode.NXDOMAIN, []
        record = self._ptr.get(ip)
        if record is None:
            return Rcode.NXDOMAIN, []
        if rtype != RecordType.PTR:
            # NODATA: the name exists but holds no data of this type.
            return Rcode.NOERROR, []
        return Rcode.NOERROR, [record]

    # -- RFC 2317 glue ----------------------------------------------------

    def add_glue_cname(self, name: DomainName, target: DomainName) -> ResourceRecord:
        """Install one CNAME glue record at ``name`` pointing at ``target``."""
        if not self.is_authoritative_for(name):
            raise ZoneError(f"glue owner {name} is not under {self.origin}")
        if name in self._cnames:
            raise ZoneError(f"duplicate CNAME glue at {name}")
        record = ResourceRecord(name, RecordType.CNAME, target, self.default_ttl)
        self._cnames[name] = record
        self._bump_serial()
        return record

    def add_rfc2317_glue(self, child: "ReverseZone") -> int:
        """Glue a classless child zone into this covering zone.

        Installs one CNAME per address of the child prefix, mapping the
        conventional reverse name onto the child-zone owner name — the
        RFC 2317 delegation pattern.  Returns the number of records added.
        """
        if not child.rfc2317:
            raise ZoneError(f"{child.prefix} is not an RFC 2317 classless zone")
        if self.rfc2317:
            raise ZoneError(f"{self.prefix} cannot host glue: it is itself classless")
        if not child.prefix.subnet_of(self.prefix):
            raise ZoneError(f"{child.prefix} is not inside covering zone {self.prefix}")
        added = 0
        for address in child.prefix:
            self.add_glue_cname(reverse_pointer(address), child.name_for(address))
            added += 1
        return added

    def glue_records(self) -> Iterator[ResourceRecord]:
        """All CNAME glue records, in owner-name order."""
        for name in sorted(self._cnames):
            yield self._cnames[name]

    # -- introspection ------------------------------------------------------

    @property
    def journal(self) -> List[ZoneChange]:
        return list(self._journal)

    def records(self) -> Iterator[ResourceRecord]:
        """All PTR records, in address order."""
        for ip in sorted(self._ptr):
            yield self._ptr[ip]

    def entries(self) -> Iterator[Tuple[ipaddress.IPv4Address, str]]:
        """(address, hostname) pairs, in address order."""
        for ip in sorted(self._ptr):
            yield ip, self._ptr[ip].rdata_text().rstrip(".")

    def __len__(self) -> int:
        return len(self._ptr)

    def __contains__(self, address: object) -> bool:
        if isinstance(address, ipaddress.IPv4Address):
            return address in self._ptr
        try:
            ip = ipaddress.ip_address(address)  # type: ignore[arg-type]
        except ValueError:
            return False
        return ip in self._ptr

    def __repr__(self) -> str:
        return f"ReverseZone({self.prefix}, {len(self)} PTRs, serial={self.serial})"
