"""Authoritative name servers with failure injection.

The paper's supplemental measurement observes three error classes when
querying authoritative servers for PTR records (Figure 6): NXDOMAIN,
name-server failure (SERVFAIL) and timeouts.  :class:`FailureModel`
injects the latter two at configurable rates using a deterministic RNG,
so reproductions of Figure 6 are repeatable.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dns.errors import NoSuchZoneError, ZoneError
from repro.dns.message import DnsMessage
from repro.dns.name import DomainName
from repro.dns.rcode import Opcode, Rcode, RecordType
from repro.dns.zone import ReverseZone


class ServerBehavior(enum.Enum):
    """Outcome chosen by the failure model for one query."""

    ANSWER = "answer"
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"


@dataclass
class FailureModel:
    """Bernoulli failure injection per query.

    ``servfail_rate`` and ``timeout_rate`` are probabilities in [0, 1];
    their sum must not exceed 1.  A seed makes the draw deterministic.
    """

    servfail_rate: float = 0.0
    timeout_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, rate in (("servfail_rate", self.servfail_rate), ("timeout_rate", self.timeout_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.servfail_rate + self.timeout_rate > 1.0:
            raise ValueError("servfail_rate + timeout_rate exceeds 1")
        self._rng = random.Random(self.seed)

    def draw(self) -> ServerBehavior:
        roll = self._rng.random()
        if roll < self.timeout_rate:
            return ServerBehavior.TIMEOUT
        if roll < self.timeout_rate + self.servfail_rate:
            return ServerBehavior.SERVFAIL
        return ServerBehavior.ANSWER


class AuthoritativeServer:
    """An authoritative server holding one or more reverse zones.

    ``handle`` implements the QUERY data path: it matches the question
    name to the longest-origin zone it serves, applies the failure
    model, and returns an authoritative response — or ``None`` to model
    a timeout (no response on the wire).
    """

    def __init__(
        self,
        name: str = "ns.example.net",
        failure_model: Optional[FailureModel] = None,
    ):
        self.name = name
        self.failure_model = failure_model or FailureModel()
        self._zones: Dict[DomainName, ReverseZone] = {}
        self.queries_handled = 0
        self.failures_injected = 0
        #: Responses sent per rcode name (lower-case); injected
        #: timeouts count under the pseudo-rcode ``"timeout"``.
        self.rcode_counts: Dict[str, int] = {}

    def add_zone(self, zone: ReverseZone) -> None:
        if zone.origin in self._zones:
            raise ZoneError(f"already serving a zone at {zone.origin}")
        self._zones[zone.origin] = zone

    def zones(self) -> List[ReverseZone]:
        return list(self._zones.values())

    def zone_for(self, name: DomainName) -> ReverseZone:
        """The longest-match zone authoritative for ``name``."""
        best: Optional[ReverseZone] = None
        for origin, zone in self._zones.items():
            if name.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        if best is None:
            raise NoSuchZoneError(f"{self.name} serves no zone for {name}")
        return best

    def handle(
        self,
        query: DnsMessage,
        *,
        at: Optional[int] = None,
        network: str = "",
        faults=None,
    ) -> Optional[DnsMessage]:
        """Answer one query; ``None`` models a timeout.

        ``faults`` (a :class:`repro.netsim.faults.FaultPlan`) injects
        timeouts, SERVFAILs, transient REFUSEDs, flaps and scheduled
        outages keyed on ``(network, question, at)`` — stateless draws,
        so any caller in any process sees the same outcome.  The legacy
        :class:`FailureModel` (sequential draws) still applies when no
        plan fires.
        """
        response = self._handle(query, at=at, network=network, faults=faults)
        rcode_key = "timeout" if response is None else response.rcode.name.lower()
        self.rcode_counts[rcode_key] = self.rcode_counts.get(rcode_key, 0) + 1
        return response

    def _handle(
        self,
        query: DnsMessage,
        *,
        at: Optional[int] = None,
        network: str = "",
        faults=None,
    ) -> Optional[DnsMessage]:
        self.queries_handled += 1
        if faults is not None:
            key = str(query.questions[0].name) if query.questions else ""
            injected = faults.server_behavior(network or self.name, key, at or 0)
            if injected == "timeout":
                self.failures_injected += 1
                return None
            if injected == "servfail":
                self.failures_injected += 1
                return query.response(Rcode.SERVFAIL)
            if injected == "refused":
                self.failures_injected += 1
                return query.response(Rcode.REFUSED)
        behavior = self.failure_model.draw()
        if behavior is ServerBehavior.TIMEOUT:
            self.failures_injected += 1
            return None
        if behavior is ServerBehavior.SERVFAIL:
            self.failures_injected += 1
            return query.response(Rcode.SERVFAIL)
        if query.opcode is not Opcode.QUERY or not query.questions:
            return query.response(Rcode.NOTIMP)
        question = query.questions[0]
        try:
            zone = self.zone_for(question.name)
        except NoSuchZoneError:
            return query.response(Rcode.REFUSED)
        rcode, answers = zone.lookup(question.name, question.rtype)
        response = query.response(rcode)
        response.authoritative = True
        response.answers = answers
        if rcode is Rcode.NXDOMAIN or (rcode is Rcode.NOERROR and not answers):
            response.authority = [zone.soa_record]
        return response

    def lookup_ptr(self, name: DomainName) -> Optional[DnsMessage]:
        """Convenience: handle a PTR query for ``name``."""
        return self.handle(DnsMessage.query(name, RecordType.PTR))

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter values, for delta accounting across a run.

        In a serial campaign successive networks share one world (and
        its servers), so absolute counters mix networks; callers
        snapshot before/after and publish the difference (see
        :func:`diff_metrics_snapshots`).
        """
        snapshot = {
            "queries_handled": self.queries_handled,
            "failures_injected": self.failures_injected,
        }
        for rcode, count in self.rcode_counts.items():
            snapshot[f"rcode_{rcode}"] = count
        return snapshot

    def export_metrics(self, registry, *, snapshot: Optional[Dict[str, int]] = None) -> None:
        """Publish this server's counters into a metrics registry.

        ``snapshot`` (from :meth:`metrics_snapshot`) restricts the
        export to activity since that snapshot was taken.
        """
        current = self.metrics_snapshot()
        delta = diff_metrics_snapshots(current, snapshot or {})
        registry.counter("dns_server_queries_total").inc(delta.get("queries_handled", 0))
        registry.counter("dns_server_failures_injected_total").inc(
            delta.get("failures_injected", 0)
        )
        rcodes = registry.counter("dns_server_rcode_total")
        for key in sorted(delta):
            if key.startswith("rcode_") and delta[key]:
                rcodes.labels(rcode=key[len("rcode_"):]).inc(delta[key])
                rcodes.inc(delta[key])

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.name!r}, zones={len(self._zones)})"


def diff_metrics_snapshots(current: Dict[str, int], baseline: Dict[str, int]) -> Dict[str, int]:
    """``current - baseline`` per key (missing baseline keys read as 0)."""
    return {key: value - baseline.get(key, 0) for key, value in current.items()}
