"""RFC 1035 messages with a wire-format codec.

The codec implements the subset of RFC 1035 the measurement stack needs:
header, question section, answer/authority/additional records for the
record types in :class:`~repro.dns.rcode.RecordType`, and name
compression (pointers are emitted on encode and followed on decode, with
loop protection).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.errors import MessageFormatError
from repro.dns.name import DomainName, MAX_LABEL_LENGTH
from repro.dns.rcode import Opcode, Rcode, RecordClass, RecordType
from repro.dns.records import ResourceRecord, SoaData

_HEADER = struct.Struct("!HHHHHH")
_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 128

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080


@dataclass(frozen=True)
class Question:
    """A question-section entry."""

    name: DomainName
    rtype: RecordType = RecordType.PTR
    rclass: RecordClass = RecordClass.IN


@dataclass
class DnsMessage:
    """A DNS query or response."""

    msg_id: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    is_response: bool = False
    authoritative: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    truncated: bool = False
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    @classmethod
    def query(
        cls,
        name: DomainName,
        rtype: RecordType = RecordType.PTR,
        msg_id: int = 0,
        recursion_desired: bool = False,
    ) -> "DnsMessage":
        """Build a query message with a single question."""
        return cls(
            msg_id=msg_id,
            recursion_desired=recursion_desired,
            questions=[Question(name, rtype)],
        )

    def response(self, rcode: Rcode = Rcode.NOERROR) -> "DnsMessage":
        """Start a response to this query, copying id and question."""
        return DnsMessage(
            msg_id=self.msg_id,
            opcode=self.opcode,
            rcode=rcode,
            is_response=True,
            recursion_desired=self.recursion_desired,
            questions=list(self.questions),
        )

    # -- wire format ---------------------------------------------------

    def to_wire(self) -> bytes:
        """Encode to RFC 1035 wire format with name compression."""
        flags = 0
        if self.is_response:
            flags |= FLAG_QR
        flags |= (int(self.opcode) & 0xF) << 11
        if self.authoritative:
            flags |= FLAG_AA
        if self.truncated:
            flags |= FLAG_TC
        if self.recursion_desired:
            flags |= FLAG_RD
        if self.recursion_available:
            flags |= FLAG_RA
        flags |= int(self.rcode) & 0xF

        out = bytearray(
            _HEADER.pack(
                self.msg_id,
                flags,
                len(self.questions),
                len(self.answers),
                len(self.authority),
                len(self.additional),
            )
        )
        offsets: Dict[Tuple[str, ...], int] = {}
        for question in self.questions:
            _encode_name(out, question.name, offsets)
            out += struct.pack("!HH", int(question.rtype), int(question.rclass))
        for record in self.answers + self.authority + self.additional:
            _encode_record(out, record, offsets)
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes) -> "DnsMessage":
        """Decode an RFC 1035 wire-format message."""
        if len(wire) < _HEADER.size:
            raise MessageFormatError("message shorter than header")
        msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(wire, 0)
        message = cls(
            msg_id=msg_id,
            opcode=Opcode((flags >> 11) & 0xF),
            rcode=Rcode(flags & 0xF),
            is_response=bool(flags & FLAG_QR),
            authoritative=bool(flags & FLAG_AA),
            truncated=bool(flags & FLAG_TC),
            recursion_desired=bool(flags & FLAG_RD),
            recursion_available=bool(flags & FLAG_RA),
        )
        offset = _HEADER.size
        for _ in range(qd):
            name, offset = _decode_name(wire, offset)
            if offset + 4 > len(wire):
                raise MessageFormatError("truncated question")
            rtype, rclass = struct.unpack_from("!HH", wire, offset)
            offset += 4
            message.questions.append(
                Question(name, RecordType(rtype), RecordClass(rclass))
            )
        for count, section in ((an, message.answers), (ns, message.authority), (ar, message.additional)):
            for _ in range(count):
                record, offset = _decode_record(wire, offset)
                section.append(record)
        return message


def _encode_name(out: bytearray, name: DomainName, offsets: Dict[Tuple[str, ...], int]) -> None:
    labels = name.labels
    for index in range(len(labels)):
        suffix = tuple(label.lower() for label in labels[index:])
        pointer = offsets.get(suffix)
        if pointer is not None and pointer < 0x4000:
            out += struct.pack("!H", 0xC000 | pointer)
            return
        if len(out) < 0x4000:
            offsets[suffix] = len(out)
        label = labels[index].encode("ascii")
        out.append(len(label))
        out += label
    out.append(0)


def _decode_name(wire: bytes, offset: int) -> Tuple[DomainName, int]:
    labels: List[str] = []
    hops = 0
    end: Optional[int] = None
    position = offset
    while True:
        if position >= len(wire):
            raise MessageFormatError("name runs past end of message")
        length = wire[position]
        if length & _POINTER_MASK == _POINTER_MASK:
            if position + 1 >= len(wire):
                raise MessageFormatError("truncated compression pointer")
            pointer = ((length & ~_POINTER_MASK) << 8) | wire[position + 1]
            if end is None:
                end = position + 2
            hops += 1
            if hops > _MAX_POINTER_HOPS:
                raise MessageFormatError("compression pointer loop")
            if pointer >= position:
                raise MessageFormatError("forward compression pointer")
            position = pointer
            continue
        if length & _POINTER_MASK:
            raise MessageFormatError(f"reserved label type {length:#x}")
        position += 1
        if length == 0:
            break
        if length > MAX_LABEL_LENGTH:
            raise MessageFormatError(f"label length {length} exceeds 63")
        if position + length > len(wire):
            raise MessageFormatError("label runs past end of message")
        labels.append(wire[position : position + length].decode("ascii"))
        position += length
    if end is None:
        end = position
    return DomainName(labels), end


def _encode_record(out: bytearray, record: ResourceRecord, offsets: Dict[Tuple[str, ...], int]) -> None:
    _encode_name(out, record.name, offsets)
    out += struct.pack("!HHI", int(record.rtype), int(record.rclass), record.ttl)
    length_at = len(out)
    out += b"\x00\x00"  # rdlength placeholder
    if isinstance(record.rdata, DomainName):
        _encode_name(out, record.rdata, offsets)
    elif isinstance(record.rdata, ipaddress.IPv4Address):
        out += record.rdata.packed
    elif isinstance(record.rdata, ipaddress.IPv6Address):
        out += record.rdata.packed
    elif isinstance(record.rdata, SoaData):
        soa = record.rdata
        _encode_name(out, soa.mname, offsets)
        _encode_name(out, soa.rname, offsets)
        out += struct.pack("!IIIII", soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum)
    elif isinstance(record.rdata, str):
        data = record.rdata.encode("ascii")
        if len(data) > 255:
            raise MessageFormatError("TXT string longer than 255 octets")
        out.append(len(data))
        out += data
    else:  # pragma: no cover - ResourceRecord validates rdata types
        raise MessageFormatError(f"cannot encode rdata {record.rdata!r}")
    rdlength = len(out) - length_at - 2
    struct.pack_into("!H", out, length_at, rdlength)


def _decode_record(wire: bytes, offset: int) -> Tuple[ResourceRecord, int]:
    name, offset = _decode_name(wire, offset)
    if offset + 10 > len(wire):
        raise MessageFormatError("truncated record header")
    rtype_value, rclass_value, ttl, rdlength = struct.unpack_from("!HHIH", wire, offset)
    offset += 10
    if offset + rdlength > len(wire):
        raise MessageFormatError("rdata runs past end of message")
    rtype = RecordType(rtype_value)
    rdata_end = offset + rdlength
    if rtype in (RecordType.PTR, RecordType.NS, RecordType.CNAME):
        rdata, consumed = _decode_name(wire, offset)
        if consumed > rdata_end:
            raise MessageFormatError("rdata name exceeds rdlength")
    elif rtype == RecordType.A:
        if rdlength != 4:
            raise MessageFormatError(f"A rdata must be 4 octets, got {rdlength}")
        rdata = ipaddress.IPv4Address(wire[offset:rdata_end])
    elif rtype == RecordType.AAAA:
        if rdlength != 16:
            raise MessageFormatError(f"AAAA rdata must be 16 octets, got {rdlength}")
        rdata = ipaddress.IPv6Address(wire[offset:rdata_end])
    elif rtype == RecordType.SOA:
        mname, position = _decode_name(wire, offset)
        rname, position = _decode_name(wire, position)
        if position + 20 > len(wire):
            raise MessageFormatError("truncated SOA rdata")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, position)
        rdata = SoaData(mname, rname, serial, refresh, retry, expire, minimum)
    elif rtype == RecordType.TXT:
        if rdlength < 1:
            raise MessageFormatError("empty TXT rdata")
        text_length = wire[offset]
        if offset + 1 + text_length > rdata_end:
            raise MessageFormatError("TXT string exceeds rdlength")
        rdata = wire[offset + 1 : offset + 1 + text_length].decode("ascii")
    else:  # pragma: no cover - RecordType() above rejects unknown types
        raise MessageFormatError(f"cannot decode rdata for {rtype}")
    record = ResourceRecord(name, rtype, rdata, ttl, RecordClass(rclass_value))
    return record, rdata_end
