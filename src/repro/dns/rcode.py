"""DNS protocol constants: response codes, opcodes, record types/classes."""

from __future__ import annotations

import enum


class Rcode(enum.IntEnum):
    """RFC 1035 response codes (the subset the measurements encounter)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class RecordType(enum.IntEnum):
    """Record types used by the reproduction (PTR is the workhorse)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    TXT = 16
    AAAA = 28

    @classmethod
    def parse(cls, text: str) -> "RecordType":
        try:
            return cls[text.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown record type {text!r}") from exc


class RecordClass(enum.IntEnum):
    IN = 1
    ANY = 255
