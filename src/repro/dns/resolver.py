"""A stub resolver that queries authoritative servers directly.

The paper's reactive measurement "queries the authoritative name server
for the IP address in question directly, to make sure we get a fresh
answer (i.e., not from a cache)" (Section 6.1).  :class:`StubResolver`
models exactly that: a delegation map routes each reverse name to the
serving :class:`~repro.dns.server.AuthoritativeServer`; timeouts are
retried up to a configurable count, and the outcome is folded into a
:class:`ResolutionStatus` that matches the error classes of Figure 6.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dns.errors import NoSuchZoneError
from repro.dns.message import DnsMessage
from repro.dns.name import DomainName, IPAddress, reverse_pointer
from repro.dns.rcode import Rcode, RecordType
from repro.dns.server import AuthoritativeServer

DEFAULT_TIMEOUT_SECONDS = 5.0
DEFAULT_RETRIES = 1


class ResolutionStatus(enum.Enum):
    """Outcome classes, matching the paper's Figure 6 categories."""

    NOERROR = "noerror"
    NXDOMAIN = "nxdomain"
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"
    NO_SERVER = "no_server"

    @property
    def is_error(self) -> bool:
        return self is not ResolutionStatus.NOERROR


@dataclass(frozen=True)
class ResolutionResult:
    """The outcome of one PTR resolution."""

    query_name: DomainName
    status: ResolutionStatus
    hostname: Optional[str] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.NOERROR


class StubResolver:
    """Routes PTR queries to the responsible authoritative server."""

    def __init__(
        self,
        *,
        timeout_seconds: float = DEFAULT_TIMEOUT_SECONDS,
        retries: int = DEFAULT_RETRIES,
    ):
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self._delegations: Dict[DomainName, AuthoritativeServer] = {}
        self._msg_ids = itertools.count(1)
        self.queries_sent = 0

    def delegate(self, server: AuthoritativeServer) -> None:
        """Register every zone origin served by ``server``."""
        for zone in server.zones():
            self._delegations[zone.origin] = server

    def delegate_origin(self, origin: DomainName, server: AuthoritativeServer) -> None:
        self._delegations[origin] = server

    def server_for(self, name: DomainName) -> Optional[AuthoritativeServer]:
        """Longest-origin-match delegation lookup."""
        best_origin: Optional[DomainName] = None
        best_server: Optional[AuthoritativeServer] = None
        for origin, server in self._delegations.items():
            if name.is_subdomain_of(origin):
                if best_origin is None or len(origin) > len(best_origin):
                    best_origin, best_server = origin, server
        return best_server

    def resolve_name(self, name: DomainName) -> ResolutionResult:
        """Resolve a PTR query for an arbitrary reverse name."""
        server = self.server_for(name)
        if server is None:
            return ResolutionResult(name, ResolutionStatus.NO_SERVER)
        attempts = 0
        elapsed = 0.0
        response: Optional[DnsMessage] = None
        for _ in range(self.retries + 1):
            attempts += 1
            self.queries_sent += 1
            query = DnsMessage.query(name, RecordType.PTR, msg_id=next(self._msg_ids))
            try:
                response = server.handle(query)
            except NoSuchZoneError:
                response = query.response(Rcode.REFUSED)
            if response is not None:
                break
            elapsed += self.timeout_seconds
        if response is None:
            return ResolutionResult(name, ResolutionStatus.TIMEOUT, attempts=attempts, elapsed_seconds=elapsed)
        if response.rcode is Rcode.NXDOMAIN:
            status = ResolutionStatus.NXDOMAIN
        elif response.rcode is Rcode.NOERROR and response.answers:
            status = ResolutionStatus.NOERROR
        elif response.rcode is Rcode.NOERROR:
            # NODATA for PTR behaves like a missing record for our purposes.
            status = ResolutionStatus.NXDOMAIN
        else:
            status = ResolutionStatus.SERVFAIL
        hostname: Optional[str] = None
        if status is ResolutionStatus.NOERROR:
            hostname = response.answers[0].rdata_text().rstrip(".")
        return ResolutionResult(name, status, hostname, attempts, elapsed)

    def resolve_ptr(self, address: IPAddress) -> ResolutionResult:
        """Resolve the PTR record for an IP address.

        This is the operation the rDNS scanners perform: reverse the
        address and ask the authoritative server for a fresh answer.
        """
        return self.resolve_name(reverse_pointer(address))

    def resolve_many(self, addresses: List[IPAddress]) -> List[ResolutionResult]:
        return [self.resolve_ptr(address) for address in addresses]
