"""A stub resolver that queries authoritative servers directly.

The paper's reactive measurement "queries the authoritative name server
for the IP address in question directly, to make sure we get a fresh
answer (i.e., not from a cache)" (Section 6.1).  :class:`StubResolver`
models exactly that: a delegation map routes each reverse name to the
serving :class:`~repro.dns.server.AuthoritativeServer`; timeouts are
retried up to a configurable count, and the outcome is folded into a
:class:`ResolutionStatus` that matches the error classes of Figure 6.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dns.errors import NoSuchZoneError
from repro.dns.message import DnsMessage
from repro.dns.name import DomainName, IPAddress, reverse_pointer
from repro.dns.rcode import Rcode, RecordType
from repro.dns.server import AuthoritativeServer

DEFAULT_TIMEOUT_SECONDS = 5.0
DEFAULT_RETRIES = 1

#: How many CNAME links a single lookup may follow (RFC 2317 glue chains
#: are one link deep; the bound exists to stop glue loops, not real use).
MAX_CNAME_CHAIN = 8


class ResolutionStatus(enum.Enum):
    """Outcome classes, matching the paper's Figure 6 categories.

    REFUSED is kept distinct from SERVFAIL: a server-side refusal (the
    server answers, but declines) is a policy signal, not a failure,
    and folding the two together would distort the Figure 6 breakdown.
    """

    NOERROR = "noerror"
    NXDOMAIN = "nxdomain"
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"
    REFUSED = "refused"
    NO_SERVER = "no_server"

    @property
    def is_error(self) -> bool:
        return self is not ResolutionStatus.NOERROR


@dataclass
class ServerHealth:
    """Per-authoritative-server health counters kept by the resolver."""

    queries: int = 0
    answers: int = 0
    timeouts: int = 0
    servfails: int = 0
    refused: int = 0
    consecutive_timeouts: int = 0
    max_consecutive_timeouts: int = 0

    def record(self, status: "ResolutionStatus", timeouts_seen: int) -> None:
        """Fold one completed lookup (with its timed-out attempts) in."""
        self.queries += 1
        if timeouts_seen:
            self.timeouts += timeouts_seen
            self.consecutive_timeouts += timeouts_seen
            self.max_consecutive_timeouts = max(
                self.max_consecutive_timeouts, self.consecutive_timeouts
            )
        if status is ResolutionStatus.SERVFAIL:
            self.servfails += 1
        elif status is ResolutionStatus.REFUSED:
            self.refused += 1
        if status is not ResolutionStatus.TIMEOUT:
            # Any response — even SERVFAIL/REFUSED — proves the server
            # is reachable again.
            self.answers += 1
            self.consecutive_timeouts = 0


@dataclass(frozen=True)
class ResolutionResult:
    """The outcome of one PTR resolution."""

    query_name: DomainName
    status: ResolutionStatus
    hostname: Optional[str] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.NOERROR


class StubResolver:
    """Routes PTR queries to the responsible authoritative server."""

    def __init__(
        self,
        *,
        timeout_seconds: float = DEFAULT_TIMEOUT_SECONDS,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = 0.0,
        fault_plan=None,
    ):
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        #: With ``backoff_base > 0``, each retry waits
        #: ``backoff_base * 2**(attempt-1)`` seconds, scaled by a
        #: deterministic jitter factor in [0.5, 1.5) — the Section 6.1
        #: retry discipline, reproducible across runs.
        self.backoff_base = backoff_base
        #: Optional :class:`repro.netsim.faults.FaultPlan` forwarded to
        #: every authoritative server on the query path.
        self.fault_plan = fault_plan
        self._delegations: Dict[DomainName, AuthoritativeServer] = {}
        #: Memoised longest-origin matches; a pure function of the
        #: delegation table, so it is dropped whenever that changes.
        self._server_cache: Dict[DomainName, Optional[AuthoritativeServer]] = {}
        self._msg_ids = itertools.count(1)
        self.queries_sent = 0
        self.timeouts_seen = 0
        #: Completed lookups per :class:`ResolutionStatus`.
        self.status_counts: Dict[ResolutionStatus, int] = {}
        #: Wire attempts beyond the first, summed over all lookups.
        self.retries_sent = 0
        #: Backoff waits taken and their total (simulated) duration.
        self.backoff_waits = 0
        self.backoff_seconds_total = 0.0
        #: Per-server health, keyed by server name.
        self.server_health: Dict[str, ServerHealth] = {}

    def delegate(self, server: AuthoritativeServer) -> None:
        """Register every zone origin served by ``server``."""
        for zone in server.zones():
            self._delegations[zone.origin] = server
        self._server_cache.clear()

    def delegate_origin(self, origin: DomainName, server: AuthoritativeServer) -> None:
        self._delegations[origin] = server
        self._server_cache.clear()

    def server_for(self, name: DomainName) -> Optional[AuthoritativeServer]:
        """Longest-origin-match delegation lookup, memoised per name.

        Sweeps re-resolve the same few thousand reverse names every
        interval; the linear scan over all delegations only runs on the
        first sight of each name.
        """
        try:
            return self._server_cache[name]
        except KeyError:
            pass
        best_origin: Optional[DomainName] = None
        best_server: Optional[AuthoritativeServer] = None
        for origin, server in self._delegations.items():
            if name.is_subdomain_of(origin):
                if best_origin is None or len(origin) > len(best_origin):
                    best_origin, best_server = origin, server
        self._server_cache[name] = best_server
        return best_server

    def backoff_delay(self, name: DomainName, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        Exponential in the attempt number, scaled by deterministic
        jitter: the fault plan's keyed stream when one is attached,
        otherwise a stable hash of (name, attempt) — either way the
        same inputs always produce the same schedule.
        """
        if self.backoff_base <= 0:
            return 0.0
        if self.fault_plan is not None:
            jitter = self.fault_plan.backoff_jitter(str(name), attempt)
        else:
            from repro.netsim.faults import keyed_uniform

            jitter = keyed_uniform(0, "backoff", str(name), attempt)
        return self.backoff_base * (2 ** (attempt - 1)) * (0.5 + jitter)

    def resolve_name(
        self, name: DomainName, *, at: Optional[int] = None, network: str = ""
    ) -> ResolutionResult:
        """Resolve a PTR query for an arbitrary reverse name.

        ``at`` (simulation seconds) and ``network`` key the fault plan's
        deterministic draws; both are optional and ignored when no plan
        is attached.  CNAME answers — the RFC 2317 classless-delegation
        glue — are followed up to :data:`MAX_CNAME_CHAIN` links, each
        link re-routed through the delegation table.
        """
        original = name
        attempts = 0
        elapsed = 0.0
        for _ in range(MAX_CNAME_CHAIN + 1):
            server = self.server_for(name)
            if server is None:
                status = ResolutionStatus.NO_SERVER
                self.status_counts[status] = self.status_counts.get(status, 0) + 1
                return ResolutionResult(
                    original, status, attempts=max(attempts, 1), elapsed_seconds=elapsed
                )
            timeouts = 0
            link_attempts = 0
            response: Optional[DnsMessage] = None
            for _ in range(self.retries + 1):
                attempts += 1
                link_attempts += 1
                self.queries_sent += 1
                query = DnsMessage.query(name, RecordType.PTR, msg_id=next(self._msg_ids))
                try:
                    response = server.handle(
                        query, at=at, network=network, faults=self.fault_plan
                    )
                except NoSuchZoneError:
                    response = query.response(Rcode.REFUSED)
                if response is not None:
                    break
                timeouts += 1
                delay = self.backoff_delay(name, link_attempts)
                if delay > 0:
                    self.backoff_waits += 1
                    self.backoff_seconds_total += delay
                elapsed += self.timeout_seconds + delay
            self.timeouts_seen += timeouts
            self.retries_sent += link_attempts - 1
            if response is None:
                status = ResolutionStatus.TIMEOUT
            elif response.rcode is Rcode.NXDOMAIN:
                status = ResolutionStatus.NXDOMAIN
            elif response.rcode is Rcode.NOERROR and response.answers:
                status = ResolutionStatus.NOERROR
            elif response.rcode is Rcode.NOERROR:
                # NODATA for PTR behaves like a missing record for our purposes.
                status = ResolutionStatus.NXDOMAIN
            elif response.rcode is Rcode.REFUSED:
                status = ResolutionStatus.REFUSED
            else:
                status = ResolutionStatus.SERVFAIL
            health = self.server_health.get(server.name)
            if health is None:
                health = self.server_health[server.name] = ServerHealth()
            health.record(status, timeouts)
            if (
                status is ResolutionStatus.NOERROR
                and response is not None
                and response.answers[0].rtype is RecordType.CNAME
            ):
                target = response.answers[0].rdata
                if isinstance(target, DomainName):
                    name = target
                    continue
                status = ResolutionStatus.SERVFAIL
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            hostname: Optional[str] = None
            if status is ResolutionStatus.NOERROR and response is not None:
                hostname = response.answers[0].rdata_text().rstrip(".")
            return ResolutionResult(original, status, hostname, attempts, elapsed)
        # Chain longer than MAX_CNAME_CHAIN: a glue loop, effectively broken.
        status = ResolutionStatus.SERVFAIL
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        return ResolutionResult(original, status, attempts=attempts, elapsed_seconds=elapsed)

    def resolve_ptr(
        self, address: IPAddress, *, at: Optional[int] = None, network: str = ""
    ) -> ResolutionResult:
        """Resolve the PTR record for an IP address.

        This is the operation the rDNS scanners perform: reverse the
        address and ask the authoritative server for a fresh answer.
        """
        return self.resolve_name(reverse_pointer(address), at=at, network=network)

    def lookup_batch(
        self,
        addresses: List[IPAddress],
        *,
        at: Optional[int] = None,
        network: str = "",
    ) -> List[ResolutionResult]:
        """Resolve PTR records for a whole sweep segment in one call.

        Results are in input order, and every per-address draw (fault
        plan, server failure model, backoff jitter) happens in exactly
        the order the per-address loop would produce — batch callers
        stay bit-identical to ``resolve_ptr`` loops under any
        ``FaultPlan``.
        """
        resolve = self.resolve_name
        return [
            resolve(reverse_pointer(address), at=at, network=network)
            for address in addresses
        ]

    def resolve_many(self, addresses: List[IPAddress]) -> List[ResolutionResult]:
        return self.lookup_batch(addresses)

    def export_metrics(self, registry) -> None:
        """Publish query/rcode/retry/backoff totals into a registry.

        Counters are deterministic functions of the queries resolved,
        so snapshots from per-network resolvers merge bit-identically
        regardless of process split.  Per-server health lands as
        labelled children of the ``resolver_server_*`` counters.
        """
        registry.counter("resolver_queries_total").inc(self.queries_sent)
        registry.counter("resolver_timeouts_total").inc(self.timeouts_seen)
        registry.counter("resolver_retries_total").inc(self.retries_sent)
        registry.counter("resolver_backoff_waits_total").inc(self.backoff_waits)
        registry.counter("resolver_backoff_seconds_total").inc(self.backoff_seconds_total)
        rcodes = registry.counter("resolver_rcode_total")
        for status in sorted(self.status_counts, key=lambda s: s.value):
            rcodes.labels(rcode=status.value).inc(self.status_counts[status])
            rcodes.inc(self.status_counts[status])
        server_queries = registry.counter("resolver_server_queries_total")
        server_timeouts = registry.counter("resolver_server_timeouts_total")
        for name in sorted(self.server_health):
            health = self.server_health[name]
            server_queries.labels(server=name).inc(health.queries)
            server_timeouts.labels(server=name).inc(health.timeouts)
