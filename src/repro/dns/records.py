"""Resource records and RRsets.

Rdata is stored in a parsed, type-aware form: PTR/NS/CNAME rdata is a
:class:`~repro.dns.name.DomainName`, TXT rdata a string, A/AAAA rdata an
:mod:`ipaddress` address, SOA a :class:`SoaData`.  The wire codec in
:mod:`repro.dns.message` serializes these forms.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Union

from repro.dns.name import DomainName, IPAddress, reverse_pointer
from repro.dns.rcode import RecordClass, RecordType

DEFAULT_PTR_TTL = 3600


@dataclass(frozen=True)
class SoaData:
    """SOA rdata; the serial is what dynamic updates bump."""

    mname: DomainName
    rname: DomainName
    serial: int = 1
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300


Rdata = Union[DomainName, str, ipaddress.IPv4Address, ipaddress.IPv6Address, SoaData]


@dataclass(frozen=True)
class ResourceRecord:
    """A single resource record (name, type, class, TTL, rdata)."""

    name: DomainName
    rtype: RecordType
    rdata: Rdata
    ttl: int = DEFAULT_PTR_TTL
    rclass: RecordClass = RecordClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError(f"negative TTL: {self.ttl}")
        expected = _RDATA_TYPES.get(self.rtype)
        if expected is not None and not isinstance(self.rdata, expected):
            raise TypeError(
                f"{self.rtype.name} rdata must be {expected}, got {type(self.rdata)!r}"
            )

    def rdata_text(self) -> str:
        """The presentation form of the rdata."""
        if isinstance(self.rdata, DomainName):
            return self.rdata.to_text()
        if isinstance(self.rdata, SoaData):
            soa = self.rdata
            return (
                f"{soa.mname.to_text()} {soa.rname.to_text()} {soa.serial} "
                f"{soa.refresh} {soa.retry} {soa.expire} {soa.minimum}"
            )
        return str(self.rdata)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {self.rclass.name} "
            f"{self.rtype.name} {self.rdata_text()}"
        )


_RDATA_TYPES = {
    RecordType.PTR: DomainName,
    RecordType.NS: DomainName,
    RecordType.CNAME: DomainName,
    RecordType.A: ipaddress.IPv4Address,
    RecordType.AAAA: ipaddress.IPv6Address,
    RecordType.TXT: str,
    RecordType.SOA: SoaData,
}


@dataclass
class RRset:
    """All records sharing a (name, type) pair."""

    name: DomainName
    rtype: RecordType
    records: List[ResourceRecord] = field(default_factory=list)

    def add(self, record: ResourceRecord) -> None:
        if record.name != self.name or record.rtype != self.rtype:
            raise ValueError("record does not belong to this RRset")
        if record not in self.records:
            self.records.append(record)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)


def make_ptr(address: IPAddress, hostname: str, ttl: int = DEFAULT_PTR_TTL) -> ResourceRecord:
    """Build the PTR record mapping ``address`` to ``hostname``.

    >>> make_ptr("93.184.216.34", "example.com").to_text()
    '34.216.184.93.in-addr.arpa. 3600 IN PTR example.com.'
    """
    return ResourceRecord(
        name=reverse_pointer(address),
        rtype=RecordType.PTR,
        rdata=DomainName.parse(hostname),
        ttl=ttl,
    )


def group_rrsets(records: Iterable[ResourceRecord]) -> List[RRset]:
    """Group records into RRsets, preserving first-seen order."""
    rrsets: dict = {}
    for record in records:
        key = (record.name, record.rtype)
        if key not in rrsets:
            rrsets[key] = RRset(record.name, record.rtype)
        rrsets[key].add(record)
    return list(rrsets.values())
