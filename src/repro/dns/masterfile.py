"""RFC 1035 master-file (zone file) export and import.

Lets reverse and forward zones be dumped to the conventional
presentation format — so simulated zone state can be inspected with
standard tooling habits — and loaded back, preserving content.
"""

from __future__ import annotations

import ipaddress
from typing import List, TextIO, Union

from repro.dns.errors import ZoneError
from repro.dns.forward import ForwardZone
from repro.dns.name import DomainName, from_reverse_pointer
from repro.dns.zone import ReverseZone

Zone = Union[ReverseZone, ForwardZone]


def dump_zone(zone: Zone) -> str:
    """The zone's content in master-file presentation format."""
    lines = [
        f"$ORIGIN {zone.origin.to_text()}",
        f"$TTL {zone.default_ttl}",
        zone.soa_record.to_text(),
    ]
    if isinstance(zone, ReverseZone):
        for record in zone.glue_records():
            lines.append(record.to_text())
        for record in zone.records():
            lines.append(record.to_text())
    else:
        for name, address in zone.entries():
            lines.append(f"{name.to_text()} {zone.default_ttl} IN A {address}")
    return "\n".join(lines) + "\n"


def write_zone(zone: Zone, stream: TextIO) -> int:
    """Write the zone to a text stream; returns characters written."""
    text = dump_zone(zone)
    stream.write(text)
    return len(text)


def _tokenize(line: str) -> List[str]:
    comment = line.find(";")
    if comment >= 0:
        line = line[:comment]
    return line.split()


def load_reverse_zone(text: str, prefix: str) -> ReverseZone:
    """Parse a master file back into a :class:`ReverseZone`.

    Only PTR records are imported (SOA is regenerated; the serial
    restarts, as it would on a fresh zone transfer into a new server).
    """
    zone = ReverseZone(prefix)
    default_ttl = zone.default_ttl
    for line_number, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw)
        if not tokens:
            continue
        if tokens[0] == "$ORIGIN":
            origin = DomainName.parse(tokens[1])
            if origin != zone.origin:
                raise ZoneError(
                    f"line {line_number}: $ORIGIN {origin} does not match zone {zone.origin}"
                )
            continue
        if tokens[0] == "$TTL":
            default_ttl = int(tokens[1])
            continue
        if len(tokens) < 5:
            raise ZoneError(f"line {line_number}: malformed record {raw!r}")
        name_text, ttl_text, rclass, rtype = tokens[:4]
        if rclass.upper() != "IN":
            raise ZoneError(f"line {line_number}: unsupported class {rclass!r}")
        if rtype.upper() == "SOA":
            continue
        if rtype.upper() == "CNAME":
            # RFC 2317 glue hosted by a covering zone round-trips as-is.
            zone.add_glue_cname(DomainName.parse(name_text), DomainName.parse(tokens[4]))
            continue
        if rtype.upper() != "PTR":
            raise ZoneError(f"line {line_number}: unsupported type {rtype!r} in reverse zone")
        name = DomainName.parse(name_text)
        if zone.rfc2317:
            address = zone.address_for_name(name)
            if address is None:
                raise ZoneError(f"line {line_number}: {name} is not in zone {zone.origin}")
        else:
            address = from_reverse_pointer(name)
        hostname = tokens[4].rstrip(".")
        zone.set_ptr(address, hostname, ttl=int(ttl_text) if ttl_text.isdigit() else default_ttl)
    return zone


def load_forward_zone(text: str, origin: str) -> ForwardZone:
    """Parse a master file back into a :class:`ForwardZone`."""
    zone = ForwardZone(origin)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw)
        if not tokens or tokens[0] in ("$ORIGIN", "$TTL"):
            continue
        if len(tokens) < 5:
            raise ZoneError(f"line {line_number}: malformed record {raw!r}")
        name_text, _, rclass, rtype = tokens[:4]
        if rclass.upper() != "IN":
            raise ZoneError(f"line {line_number}: unsupported class {rclass!r}")
        if rtype.upper() == "SOA":
            continue
        if rtype.upper() != "A":
            raise ZoneError(f"line {line_number}: unsupported type {rtype!r} in forward zone")
        zone.set_a(name_text.rstrip("."), ipaddress.IPv4Address(tokens[4]))
    return zone
