"""The simulated Internet: all networks, announced prefixes, the world.

:class:`Internet` aggregates networks into one measurable address
space: snapshot collectors iterate its PTR records per day, the
dynamicity analysis consumes its per-/24 counts, and the reactive
measurement resolves against its authoritative servers.

:func:`build_world` assembles the paper's world: the nine supplemental
networks of Table 4 (with their ICMP policies, lease times, COVID
timelines and the Brian personas on Academic-A), a wider set of
identity-leaking networks whose type mix reproduces Figure 4, and
background announced prefixes of sizes /8 through /23 for Figure 1.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.resolver import StubResolver
from repro.dns.server import FailureModel
from repro.netsim.calendar import CovidTimeline
from repro.netsim.network import IcmpPolicy, Network, NetworkType, Subnet
from repro.netsim.personas import make_brian_devices
from repro.netsim.population import NetworkBuilder
from repro.netsim.rng import RngStreams


@dataclass(frozen=True)
class AnnouncedPrefix:
    """One BGP-announced prefix and its holder network's name."""

    prefix: ipaddress.IPv4Network
    holder: str


class Internet:
    """All simulated networks, addressable as one measurement target."""

    def __init__(self) -> None:
        self._networks: Dict[str, Network] = {}

    def add(self, network: Network) -> Network:
        if network.name in self._networks:
            raise ValueError(f"duplicate network name {network.name!r}")
        for existing in self._networks.values():
            if network.prefix.overlaps(existing.prefix):
                raise ValueError(
                    f"{network.name} ({network.prefix}) overlaps "
                    f"{existing.name} ({existing.prefix})"
                )
        self._networks[network.name] = network
        return network

    def network(self, name: str) -> Network:
        return self._networks[name]

    @property
    def networks(self) -> List[Network]:
        return list(self._networks.values())

    def announced_prefixes(self) -> List[AnnouncedPrefix]:
        return [
            AnnouncedPrefix(network.prefix, network.name)
            for network in self._networks.values()
        ]

    def records_on(
        self, day: dt.date, *, at_offset: Optional[int] = None
    ) -> Iterator[Tuple[ipaddress.IPv4Address, str]]:
        """Every (address, hostname) PTR pair present on ``day``."""
        for network in self._networks.values():
            yield from network.records_on(day, at_offset=at_offset)

    def counts_by_slash24(self, day: dt.date, *, at_offset: Optional[int] = None) -> Dict[str, int]:
        """PTR-record count per /24 on ``day`` (dynamicity-heuristic input)."""
        merged: Dict[str, int] = {}
        for network in self._networks.values():
            for key, count in network.counts_by_slash24(day, at_offset=at_offset).items():
                merged[key] = merged.get(key, 0) + count
        return merged

    def clear_day_caches(self) -> None:
        """Drop every network's memoised per-day records/counts."""
        for network in self._networks.values():
            network.clear_day_caches()

    def cache_token(self) -> str:
        """A deterministic fingerprint of the simulated world.

        Captures everything that determines snapshot content: the seed
        of each network's RNG streams, topology, per-subnet backing
        (device identities and naming, count-model parameters, static
        entry counts) and the occupancy calendars.  Two worlds built
        with the same ``build_world(seed, scale)`` arguments share a
        token; changing the seed, scale, or any network spec changes
        it.  The on-disk snapshot cache folds this token into its keys.
        """
        parts: List[str] = []
        for network in self._networks.values():
            parts.append(
                "|".join(
                    [
                        network.name,
                        network.net_type.value,
                        str(network.prefix),
                        network.suffix,
                        f"seed={network.rngs.seed}",
                        f"lease={network.lease_time}",
                        f"housing={network.housing_response}",
                        f"icmp={network.icmp_policy.value}",
                        f"holidays={network.holidays!r}",
                        f"covid={network.covid!r}",
                    ]
                    # Zone layout only affects the DNS-serving side, but
                    # it is still world shape; appended only when
                    # non-default so historical tokens stay stable.
                    + ([f"layout={network.zone_layout}"] if network.zone_layout != "flat" else [])
                )
            )
            for subnet in network.subnets:
                if subnet.devices:
                    backing = "devices=" + ",".join(
                        f"{device.device_id}/{device.naming.value}/{device.model.key}"
                        f"/{device.owner_name or '-'}/{device.session_participation}"
                        for device in subnet.devices
                    )
                elif subnet.count_model is not None:
                    model = subnet.count_model
                    backing = (
                        f"count={model.mean}/{model.weekend_factor}/{model.noise}"
                        f"/{subnet.count_template}/{subnet.count_suffix}"
                    )
                else:
                    backing = "static=" + ",".join(
                        f"{address}={hostname}" for address, hostname in subnet.static_entries
                    )
                mode = subnet.rdns_mode
                mode_marker = "" if mode.value == "enabled" else f"|rdns={mode.value}"
                # The full policy token, not just the class name: two
                # HashedPolicy instances with different keys (or two
                # templates) publish different zones, and the class
                # name alone let them share a cache entry.
                policy_token = (
                    subnet.policy.cache_token()
                    if subnet.policy is not None
                    else "NoneType"
                )
                parts.append(
                    f"  {subnet.prefix}|{subnet.role.value}"
                    f"|policy={policy_token}|{backing}{mode_marker}"
                )
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()

    def resolver(self, **kwargs) -> StubResolver:
        """A stub resolver delegated to every network's name server.

        Keyword arguments (``retries``, ``backoff_base``,
        ``fault_plan``, ...) are forwarded to :class:`StubResolver`.
        """
        resolver = StubResolver(**kwargs)
        for network in self._networks.values():
            resolver.delegate(network.server)
        return resolver

    def __len__(self) -> int:
        return len(self._networks)


@dataclass
class WorldScale:
    """Size knobs for :func:`build_world`.

    The paper operates at full-Internet scale (6.15M populated /24s,
    197 identified networks); the defaults here scale that down while
    preserving the type mix of Figure 4 (62% academic, 15% ISP, 11%
    other, 9% enterprise, 3% government among identified networks) and
    the rarity of dynamic space within announced prefixes (Figure 1).
    """

    extra_academic: int = 16
    extra_isp: int = 3
    extra_other: int = 3
    extra_enterprise: int = 0
    extra_government: int = 1
    people_per_extra: int = 70
    background_per_size: int = 2
    background_sizes: Tuple[int, ...] = (8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23)
    supplemental_people: int = 90

    @classmethod
    def small(cls) -> "WorldScale":
        """A quick world for unit tests."""
        return cls(
            extra_academic=2,
            extra_isp=1,
            extra_other=1,
            extra_government=0,
            people_per_extra=18,
            background_per_size=1,
            background_sizes=(12, 16, 20, 23),
            supplemental_people=20,
        )

    @property
    def identified_target(self) -> int:
        """How many identity-leaking networks the world contains."""
        # 9 supplemental minus the non-leaking ISPs configured with
        # fixed-form names, plus all the extras (extras always leak).
        return (
            9
            + self.extra_academic
            + self.extra_isp
            + self.extra_other
            + self.extra_enterprise
            + self.extra_government
        )


class _PrefixAllocator:
    """Hands out non-overlapping prefixes, aligned to their size."""

    def __init__(self, start: str = "60.0.0.0"):
        self._cursor = int(ipaddress.IPv4Address(start))

    def take(self, prefixlen: int) -> ipaddress.IPv4Network:
        size = 2 ** (32 - prefixlen)
        aligned = (self._cursor + size - 1) // size * size
        network = ipaddress.ip_network((aligned, prefixlen))
        self._cursor = aligned + size
        return network


@dataclass
class World:
    """A fully built simulation world."""

    internet: Internet
    rngs: RngStreams
    scale: WorldScale
    #: The nine Table-4 networks, keyed by their anonymised paper names.
    supplemental: Dict[str, Network] = field(default_factory=dict)

    @property
    def academic_a(self) -> Network:
        return self.supplemental["Academic-A"]

    def supplemental_targets(self, name: str) -> List[Subnet]:
        """The device-backed subnets targeted by supplemental measurement.

        The paper targets only the address space "which contains the
        most dynamically assigned hosts" (Section 6.1).
        """
        return self.supplemental[name].device_backed_subnets()


def build_world(seed: int = 0, scale: Optional[WorldScale] = None) -> World:
    """Assemble the complete simulated Internet."""
    scale = scale or WorldScale()
    rngs = RngStreams(seed)
    builder = NetworkBuilder(rngs)
    internet = Internet()
    world = World(internet=internet, rngs=rngs, scale=scale)
    people = scale.supplemental_people

    dns_failures = FailureModel(servfail_rate=0.004, timeout_rate=0.003, seed=seed)

    # --- the nine supplemental networks (Table 4) -------------------------
    brian_edu, brian_housing = make_brian_devices(2021)
    academic_a = builder.academic(
        "Academic-A",
        "20.0.0.0/16",
        "campus.stateu.edu",
        education_prefix="20.0.10.0/24",
        housing_prefix="20.0.20.0/24",
        servers_prefix="20.0.1.0/26",
        infrastructure_prefix="20.0.2.0/26",
        staff=people // 3,
        students=people // 3,
        residents=people,
        lease_time=5400,  # the long-lease laggard of Figure 7b
        covid=CovidTimeline.risk_reporting_campus(),
        us_campus=True,
        housing_response="exodus",  # risk reports send students home
        extra_education_devices=brian_edu,
        extra_housing_devices=brian_housing,
    )
    academic_a.server.failure_model = dns_failures
    internet.add(academic_a)
    world.supplemental["Academic-A"] = academic_a

    academic_b = builder.academic(
        "Academic-B",
        "21.0.0.0/16",
        "net.college.edu",
        education_prefix="21.0.10.0/24",
        servers_prefix="21.0.1.0/26",
        infrastructure_prefix="21.0.2.0/26",
        staff=people // 2,
        students=people // 2,
        residents=0,
        lease_time=3600,
        icmp_policy=IcmpPolicy.BLOCK,
        covid=CovidTimeline.typical_university(),
        us_campus=True,
    )
    # Exactly two hosts answer pings, and they carry no PTR record:
    # appliance addresses at the top of the targeted education /24,
    # above the device range, so the sweep sees them but rDNS has
    # nothing to say about them (Section 6.2's Academic-B).
    academic_b.icmp_allowlist = {
        ipaddress.IPv4Address("21.0.10.253"),
        ipaddress.IPv4Address("21.0.10.254"),
    }
    internet.add(academic_b)
    world.supplemental["Academic-B"] = academic_b

    academic_c = builder.academic(
        "Academic-C",
        "22.0.0.0/16",
        "campus.techuni.ac.nl",
        education_prefix="22.0.10.0/24",
        housing_prefix="22.0.20.0/24",
        servers_prefix="22.0.1.0/26",
        infrastructure_prefix="22.0.2.0/26",
        staff=people // 2,
        students=people // 2,
        residents=people,
        lease_time=3600,
        covid=CovidTimeline.typical_university(),
        us_campus=False,  # the authors' home institution: Carnaval dips
    )
    internet.add(academic_c)
    world.supplemental["Academic-C"] = academic_c

    enterprise_a = builder.enterprise(
        "Enterprise-A",
        "30.0.0.0/16",
        "corp.initech.com",
        office_prefix="30.0.10.0/24",
        servers_prefix="30.0.1.0/26",
        employees=people,
        lease_time=3600,
    )
    internet.add(enterprise_a)
    world.supplemental["Enterprise-A"] = enterprise_a

    enterprise_b = builder.enterprise(
        "Enterprise-B",
        "31.0.0.0/16",
        "office.globex.com",
        office_prefix="31.0.10.0/24",
        servers_prefix="31.0.1.0/26",
        employees=people,
        lease_time=3600,
        icmp_policy=IcmpPolicy.BLOCK,
        covid=CovidTimeline.late_lockdown_enterprise(),
    )
    internet.add(enterprise_b)
    world.supplemental["Enterprise-B"] = enterprise_b

    enterprise_c = builder.enterprise(
        "Enterprise-C",
        "32.0.0.0/16",
        "hq.umbrella-co.com",
        office_prefix="32.0.10.0/25",
        employees=people // 2,
        lease_time=3600,
        icmp_policy=IcmpPolicy.BLOCK,
        covid=CovidTimeline.late_lockdown_enterprise(),
    )
    internet.add(enterprise_c)
    world.supplemental["Enterprise-C"] = enterprise_c

    isp_a = builder.isp(
        "ISP-A",
        "40.0.0.0/16",
        "dyn.metronet.net",
        access_prefix="40.0.10.0/24",
        infrastructure_prefix="40.0.2.0/26",
        subscribers=people,
        lease_time=3600,
        icmp_response_rate=0.45,  # Table 4: ISP-A sees ~35% responsive
    )
    internet.add(isp_a)
    world.supplemental["ISP-A"] = isp_a

    isp_b = builder.isp(
        "ISP-B",
        "41.0.0.0/16",
        "cust.coastal-broadband.net",
        access_prefix="41.0.10.0/24",
        subscribers=people,
        lease_time=3600,
        icmp_response_rate=0.01,  # Table 4: ISP-B at 0.3%
    )
    internet.add(isp_b)
    world.supplemental["ISP-B"] = isp_b

    isp_c = builder.isp(
        "ISP-C",
        "42.0.0.0/16",
        "res.valley-isp.net",
        access_prefix="42.0.10.0/24",
        subscribers=people,
        lease_time=5400,
        icmp_response_rate=0.04,  # Table 4: ISP-C at 1.7%
    )
    internet.add(isp_c)
    world.supplemental["ISP-C"] = isp_c

    # --- the wider identified set (Figure 4's type mix) --------------------
    allocator = _PrefixAllocator("50.0.0.0")
    for index in range(scale.extra_academic):
        prefix = allocator.take(16)
        base = prefix.network_address
        internet.add(
            builder.academic(
                f"academic-{index:02d}",
                str(prefix),
                f"campus.uni{index:02d}.edu",
                education_prefix=str(ipaddress.ip_network((int(base) + 10 * 256, 24))),
                housing_prefix=str(ipaddress.ip_network((int(base) + 20 * 256, 24))),
                servers_prefix=str(ipaddress.ip_network((int(base) + 256, 26))),
                staff=scale.people_per_extra // 2,
                students=scale.people_per_extra // 2,
                residents=scale.people_per_extra // 2,
            )
        )
    for index in range(scale.extra_isp):
        prefix = allocator.take(16)
        base = prefix.network_address
        internet.add(
            builder.isp(
                f"isp-{index:02d}",
                str(prefix),
                f"dyn.region{index:02d}-isp.net",
                access_prefix=str(ipaddress.ip_network((int(base) + 10 * 256, 24))),
                subscribers=scale.people_per_extra,
                icmp_response_rate=0.2,
            )
        )
    for index in range(scale.extra_other):
        prefix = allocator.take(16)
        base = prefix.network_address
        internet.add(
            builder.enterprise(
                f"other-{index:02d}",
                str(prefix),
                f"members.club{index:02d}.example",
                office_prefix=str(ipaddress.ip_network((int(base) + 10 * 256, 24))),
                employees=scale.people_per_extra,
                net_type=NetworkType.OTHER,
            )
        )
    for index in range(scale.extra_enterprise):
        prefix = allocator.take(16)
        base = prefix.network_address
        internet.add(
            builder.enterprise(
                f"enterprise-{index:02d}",
                str(prefix),
                f"corp.firm{index:02d}.com",
                office_prefix=str(ipaddress.ip_network((int(base) + 10 * 256, 24))),
                employees=scale.people_per_extra,
            )
        )
    for index in range(scale.extra_government):
        prefix = allocator.take(16)
        base = prefix.network_address
        internet.add(
            builder.government(
                f"government-{index:02d}",
                str(prefix),
                f"agency{index:02d}.state.gov",
                office_prefix=str(ipaddress.ip_network((int(base) + 10 * 256, 24))),
                employees=scale.people_per_extra,
            )
        )

    # --- background announced prefixes (Figure 1) --------------------------
    background_allocator = _PrefixAllocator("80.0.0.0")
    rng = rngs.stream("background-shape")
    counter = 0
    for prefixlen in scale.background_sizes:
        for _ in range(scale.background_per_size):
            prefix = background_allocator.take(prefixlen)
            total_24s = 2 ** max(0, 24 - prefixlen)
            dynamic_24s = min(rng.randrange(0, 4), max(total_24s - 1, 0))
            static_24s = min(max(2, total_24s // 64), 6, total_24s - dynamic_24s)
            internet.add(
                builder.background(
                    f"bg-{counter:03d}",
                    str(prefix),
                    f"as{counter + 6400:d}.example.net",
                    static_24s=static_24s,
                    dynamic_24s=dynamic_24s,
                    vanity=counter % 3 == 0,
                    vanity_hosting_24s=(2 if counter % 2 == 0 and total_24s >= 8 else 0),
                )
            )
            counter += 1

    return world
