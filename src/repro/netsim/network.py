"""Networks: numbering plans, subnets and their rDNS behaviour.

A :class:`Network` owns an IPv4 prefix, one reverse zone, and a
numbering plan of :class:`Subnet` objects — mirroring the paper's
validation network, "a single /16 prefix with a numbering plan in which
some subprefixes are used for dynamic allocations whereas other
subprefixes contain static allocations" (Section 4.1).

Subnets come in three content flavours:

* **device-backed dynamic** — a population of :class:`Device` objects
  whose daily presence materialises PTR records via the subnet's
  DNS-update policy (the networks the paper identifies);
* **count-backed dynamic** — background dynamic space modelled only by
  a daily client-count process (enough for the dynamicity heuristic,
  no identities);
* **static** — fixed record sets: servers, router infrastructure, and
  fixed-form "dynamic pool" names.
"""

from __future__ import annotations

import datetime as dt
import enum
import ipaddress
import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dhcp.lease import Lease
from repro.dns.server import AuthoritativeServer, FailureModel
from repro.dns.zone import RdnsMode, ReverseZone
from repro.ipam.policy import CarryOverPolicy, DnsUpdatePolicy
from repro.netsim.calendar import CovidTimeline, HolidayCalendar
from repro.netsim.device import Device
from repro.netsim.rng import RngStreams

#: Addresses reserved at the bottom of every subnet (gateway, etc.).
RESERVED_LOW_ADDRESSES = 10


class IcmpPolicy(enum.Enum):
    """Ingress filtering: do echo requests reach hosts at all?

    Two of the paper's enterprise networks "do not see responses to
    ICMP pings at all. We suspect the operators of these networks block
    pings on ingress" (Section 6.2).
    """

    ALLOW = "allow"
    BLOCK = "block"


class NetworkType(enum.Enum):
    ACADEMIC = "academic"
    ISP = "isp"
    ENTERPRISE = "enterprise"
    GOVERNMENT = "government"
    OTHER = "other"


class SubnetRole(enum.Enum):
    DYNAMIC_CLIENTS = "dynamic_clients"
    HOUSING = "housing"          # dynamic: on-campus student housing
    EDUCATION = "education"      # dynamic: education/office buildings
    STATIC_SERVERS = "static_servers"
    INFRASTRUCTURE = "infrastructure"

    @property
    def is_dynamic(self) -> bool:
        return self in (SubnetRole.DYNAMIC_CLIENTS, SubnetRole.HOUSING, SubnetRole.EDUCATION)


@dataclass
class CountModel:
    """A daily client-count process for count-backed dynamic subnets."""

    mean: int
    weekend_factor: float = 0.75
    noise: float = 0.08

    def count_on(self, day: dt.date, rng: random.Random) -> int:
        base = self.mean * (self.weekend_factor if day.weekday() >= 5 else 1.0)
        value = rng.gauss(base, max(base * self.noise, 1.0))
        return max(0, int(round(value)))


class Subnet:
    """One prefix of a network's numbering plan."""

    def __init__(
        self,
        prefix: str,
        role: SubnetRole,
        *,
        devices: Optional[List[Device]] = None,
        count_model: Optional[CountModel] = None,
        static_entries: Optional[List[Tuple[ipaddress.IPv4Address, str]]] = None,
        policy: Optional[DnsUpdatePolicy] = None,
        count_template: str = "client-{dashed}",
        count_suffix: Optional[str] = None,
        rdns_mode: "Union[str, RdnsMode]" = RdnsMode.ENABLED,
    ):
        self.prefix = ipaddress.IPv4Network(prefix)
        self.role = role
        self.devices = devices or []
        self.count_model = count_model
        self.static_entries = static_entries or []
        self.policy = policy
        self.count_template = count_template
        self.count_suffix = count_suffix
        #: How reverse DNS is published for this prefix: ENABLED (the
        #: conventional zone), DISABLED (no PTRs at all) or RFC2317
        #: (classless child zone behind CNAME glue; sub-/24 only).
        self.rdns_mode = RdnsMode.parse(rdns_mode)
        if self.rdns_mode is RdnsMode.RFC2317 and self.prefix.prefixlen <= 24:
            raise ValueError(
                f"rdns_mode=rfc2317 needs a sub-/24 prefix, got {self.prefix}"
            )
        self._validate()
        self._device_fqdn_cache: Dict[str, str] = {}
        self._provisioned_cache: Optional[List[Tuple[ipaddress.IPv4Address, str]]] = None
        usable = self.prefix.num_addresses - RESERVED_LOW_ADDRESSES - 1
        if self.devices and len(self.devices) > usable:
            raise ValueError(
                f"{len(self.devices)} devices do not fit in {self.prefix} "
                f"({usable} usable addresses)"
            )

    def _validate(self) -> None:
        if self.role.is_dynamic:
            if self.devices and self.count_model:
                raise ValueError("a dynamic subnet is device-backed or count-backed, not both")
            if not self.devices and self.count_model is None:
                raise ValueError(f"dynamic subnet {self.prefix} needs devices or a count model")
            if self.devices and self.policy is None:
                raise ValueError("device-backed subnets need a DNS-update policy")
            if self.count_model is not None and self.count_suffix is None:
                raise ValueError("count-backed subnets need count_suffix")
        elif self.devices or self.count_model:
            raise ValueError(f"static subnet {self.prefix} cannot have dynamic content")

    # -- addressing ---------------------------------------------------------

    def device_address(self, index: int) -> ipaddress.IPv4Address:
        """The stable address of the index-th device (day-level path).

        Stability across days is what lets an outside observer track a
        device over time (the colour-coded bars of Figure 8).

        Addresses are computed, not materialised: a sharded 100k-prefix
        world would otherwise hold 256 ``IPv4Address`` objects per /24.
        """
        return self.prefix.network_address + (RESERVED_LOW_ADDRESSES + index)

    def device_fqdn(self, index: int) -> Optional[str]:
        """The PTR hostname published for the index-th device, if any."""
        device = self.devices[index]
        cached = self._device_fqdn_cache.get(device.device_id)
        if cached is not None:
            return cached or None
        assert self.policy is not None
        lease = Lease(
            address=self.device_address(index),
            client_id=device.device_id,
            duration=3600,
            bound_at=0,
            host_name=device.host_name(),
        )
        fqdn = self.policy.hostname_for(lease)
        self._device_fqdn_cache[device.device_id] = fqdn or ""
        return fqdn

    def _count_address(self, index: int) -> ipaddress.IPv4Address:
        return self.prefix.network_address + (RESERVED_LOW_ADDRESSES + index)

    def _count_fqdn(self, address: ipaddress.IPv4Address) -> str:
        label = self.count_template.format(
            dashed=str(address).replace(".", "-"),
            last_octet=str(address).rsplit(".", 1)[-1],
        )
        return f"{label}.{self.count_suffix}"

    # -- day-level snapshot ---------------------------------------------------

    def _device_present(self, device, day: dt.date, rngs: RngStreams, factor: float, at_offset: Optional[int]) -> bool:
        if at_offset is None:
            return device.is_present_on(day, rngs, factor)
        return device.is_present_at(day, at_offset, rngs, factor)

    def records_on(
        self,
        day: dt.date,
        rngs: RngStreams,
        factor: float = 1.0,
        *,
        at_offset: Optional[int] = None,
    ) -> Iterator[Tuple[ipaddress.IPv4Address, str]]:
        """(address, hostname) pairs present on ``day``.

        ``at_offset`` restricts presence to a specific second-of-day
        (point-in-time snapshot semantics); ``None`` means present at
        any time that day.
        """
        if self.rdns_mode is RdnsMode.DISABLED:
            return
        if not self.role.is_dynamic:
            yield from self.static_entries
            return
        if self.count_model is not None:
            rng = rngs.fresh("count", self.prefix, day.toordinal())
            count = min(
                self.count_model.count_on(day, rng),
                self.prefix.num_addresses - RESERVED_LOW_ADDRESSES - 1,
            )
            for index in range(count):
                address = self._count_address(index)
                yield address, self._count_fqdn(address)
            return
        if self.policy is not None and not self.policy.exposes_dynamics:
            # Static rDNS over dynamic DHCP: fixed-form records are
            # pre-provisioned for the whole pool and never change (the
            # 83 confirmed prefixes in the paper's validation), or —
            # with a no-update policy — nothing is published at all.
            yield from self._provisioned_entries()
            return
        for index, device in enumerate(self.devices):
            if self._device_present(device, day, rngs, factor, at_offset):
                fqdn = self.device_fqdn(index)
                if fqdn is not None:
                    yield self.device_address(index), fqdn

    def _provisioned_entries(self) -> List[Tuple[ipaddress.IPv4Address, str]]:
        if self._provisioned_cache is None:
            entries: List[Tuple[ipaddress.IPv4Address, str]] = []
            assert self.policy is not None
            base = self.prefix.network_address
            for offset in range(RESERVED_LOW_ADDRESSES, self.prefix.num_addresses - 1):
                address = base + offset
                hostname = self.policy.static_hostname_for(address)
                if hostname is not None:
                    entries.append((address, hostname))
            self._provisioned_cache = entries
        return self._provisioned_cache

    def count_on(
        self,
        day: dt.date,
        rngs: RngStreams,
        factor: float = 1.0,
        *,
        at_offset: Optional[int] = None,
    ) -> int:
        """Number of PTR records present on ``day`` (cheap path)."""
        if self.rdns_mode is RdnsMode.DISABLED:
            return 0
        if not self.role.is_dynamic:
            return len(self.static_entries)
        if self.count_model is not None:
            rng = rngs.fresh("count", self.prefix, day.toordinal())
            return min(
                self.count_model.count_on(day, rng),
                self.prefix.num_addresses - RESERVED_LOW_ADDRESSES - 1,
            )
        if self.policy is not None and not self.policy.exposes_dynamics:
            return len(self._provisioned_entries())
        count = 0
        for index, device in enumerate(self.devices):
            if self._device_present(device, day, rngs, factor, at_offset) and self.device_fqdn(index) is not None:
                count += 1
        return count

    def __repr__(self) -> str:
        backing = (
            f"{len(self.devices)} devices"
            if self.devices
            else f"count~{self.count_model.mean}" if self.count_model else f"{len(self.static_entries)} static"
        )
        return f"Subnet({self.prefix}, {self.role.value}, {backing})"


class Network:
    """One organisation's network."""

    #: How many (day, at_offset) record derivations each network memoises.
    #: Small on purpose: a multi-year sweep visits each day once, while
    #: the analysis stages (leak sampling, tracking, repeated
    #: ``records_on`` calls) revisit a handful of recent days many times.
    DAY_CACHE_SIZE = 32

    def __init__(
        self,
        name: str,
        net_type: NetworkType,
        prefix: str,
        suffix: str,
        *,
        subnets: Optional[List[Subnet]] = None,
        icmp_policy: IcmpPolicy = IcmpPolicy.ALLOW,
        icmp_allowlist: Optional[Iterable] = None,
        lease_time: int = 3600,
        housing_response: str = "shelter",
        holidays: Optional[HolidayCalendar] = None,
        covid: Optional[CovidTimeline] = None,
        dns_failure_model: Optional[FailureModel] = None,
        rngs: Optional[RngStreams] = None,
        zone_layout: str = "flat",
    ):
        self.name = name
        self.net_type = net_type
        self.prefix = ipaddress.IPv4Network(prefix)
        self.suffix = suffix.strip(".")
        self.subnets: List[Subnet] = []
        self.icmp_policy = icmp_policy
        # Hosts that answer pings even when the network blocks ICMP on
        # ingress (the paper's Academic-B: exactly two such hosts).
        self.icmp_allowlist = {
            ipaddress.ip_address(address) for address in (icmp_allowlist or ())
        }
        self.lease_time = lease_time
        if housing_response not in ("shelter", "exodus"):
            raise ValueError("housing_response must be 'shelter' or 'exodus'")
        # How campus housing reacts to lockdowns: "shelter" keeps (and
        # concentrates) residents on campus, the Figure-10 crossover;
        # "exodus" sends them home, so housing drops with the rest of
        # the campus (the paper's Academic-A risk-level dips).
        self.housing_response = housing_response
        self.holidays = holidays or HolidayCalendar()
        self.covid = covid or CovidTimeline.none()
        self.rngs = rngs or RngStreams(0)
        self._slash24_cache: Dict[ipaddress.IPv4Network, str] = {}
        self._records_cache: "OrderedDict[Tuple[dt.date, Optional[int]], List[Tuple[ipaddress.IPv4Address, str]]]" = OrderedDict()
        self._counts_cache: "OrderedDict[Tuple[dt.date, Optional[int]], Dict[str, int]]" = OrderedDict()
        if zone_layout not in ("flat", "delegated"):
            raise ValueError("zone_layout must be 'flat' or 'delegated'")
        #: "flat" serves the whole network prefix from one apex zone (the
        #: historical layout); "delegated" gives every populated /24 its
        #: own child zone under the apex — the per-shard delegation the
        #: sharded world model serves (``16.172.in-addr.arpa`` → per-/24
        #: children, RFC 2317 glue below the /24 boundary).
        self.zone_layout = zone_layout
        self.zone = ReverseZone(self.prefix, primary_ns=f"ns1.{self.suffix}")
        self.server = AuthoritativeServer(
            f"ns1.{self.suffix}", failure_model=dns_failure_model
        )
        self.server.add_zone(self.zone)
        #: Zone serving each subnet's PTRs, keyed by subnet prefix; None
        #: for DISABLED subnets (nothing is published).
        self._subnet_zones: Dict[ipaddress.IPv4Network, Optional[ReverseZone]] = {}
        #: Delegated per-/24 child zones (and RFC 2317 glue hosts).
        self._slash24_zones: Dict[ipaddress.IPv4Network, ReverseZone] = {}
        for subnet in subnets or []:
            self.add_subnet(subnet)

    def add_subnet(self, subnet: Subnet) -> None:
        if not subnet.prefix.subnet_of(self.prefix):
            raise ValueError(f"{subnet.prefix} is not inside {self.prefix}")
        for existing in self.subnets:
            if subnet.prefix.overlaps(existing.prefix):
                raise ValueError(f"{subnet.prefix} overlaps {existing.prefix}")
        self._wire_subnet_zone(subnet)
        self.subnets.append(subnet)
        self.clear_day_caches()

    # -- zone layout -------------------------------------------------------

    def _slash24_child_zone(self, slash24: ipaddress.IPv4Network) -> ReverseZone:
        zone = self._slash24_zones.get(slash24)
        if zone is None:
            zone = ReverseZone(slash24, primary_ns=f"ns1.{self.suffix}")
            self.server.add_zone(zone)
            self._slash24_zones[slash24] = zone
        return zone

    def _wire_subnet_zone(self, subnet: Subnet) -> None:
        """Decide (and create) the zone that serves ``subnet``'s PTRs."""
        if subnet.rdns_mode is RdnsMode.DISABLED:
            self._subnet_zones[subnet.prefix] = None
            return
        sub24 = subnet.prefix.prefixlen > 24
        if subnet.rdns_mode is RdnsMode.RFC2317:
            # Classless child zone; CNAME glue lives in the zone that is
            # conventionally authoritative for the covering /24 — the
            # per-/24 child under a delegated layout, the apex otherwise.
            child = ReverseZone(subnet.prefix, primary_ns=f"ns1.{self.suffix}")
            covering = subnet.prefix.supernet(new_prefix=24)
            if self.zone_layout == "delegated":
                host = self._slash24_child_zone(covering)
            else:
                host = self.zone
            host.add_rfc2317_glue(child)
            self.server.add_zone(child)
            self._subnet_zones[subnet.prefix] = child
            return
        if self.zone_layout == "delegated" and subnet.prefix.prefixlen >= 24:
            covering = (
                subnet.prefix
                if subnet.prefix.prefixlen == 24
                else subnet.prefix.supernet(new_prefix=24)
            )
            self._subnet_zones[subnet.prefix] = self._slash24_child_zone(covering)
            return
        # Flat layout, or a subnet wider than /24 (served from the apex).
        self._subnet_zones[subnet.prefix] = self.zone

    def zone_for_subnet(self, subnet: Subnet) -> Optional[ReverseZone]:
        """The zone PTRs for ``subnet`` land in (None when rDNS is off)."""
        return self._subnet_zones.get(subnet.prefix, self.zone)

    def zone_for_address(self, address) -> Optional[ReverseZone]:
        """The most specific zone covering ``address``."""
        ip = (
            address
            if isinstance(address, ipaddress.IPv4Address)
            else ipaddress.ip_address(address)
        )
        best: Optional[ReverseZone] = None
        for prefix, zone in self._subnet_zones.items():
            if ip in prefix and zone is not None:
                if best is None or prefix.prefixlen > best.prefix.prefixlen:
                    best = zone
        if best is not None:
            return best
        if ip in self.prefix:
            return self.zone
        return None

    def zones(self) -> List[ReverseZone]:
        """Every zone this network serves, apex first."""
        return list(self.server.zones())

    def clear_day_caches(self) -> None:
        """Drop memoised per-day records/counts (after topology changes)."""
        self._records_cache.clear()
        self._counts_cache.clear()

    def default_policy(self) -> DnsUpdatePolicy:
        return CarryOverPolicy(self.suffix)

    # -- occupancy factors ----------------------------------------------------

    def day_factor(self, day: dt.date, subnet: Subnet) -> float:
        """Holiday and COVID suppression for one subnet on one day."""
        factor = self.holidays.occupancy_factor(day)
        if subnet.role is SubnetRole.HOUSING and self.housing_response == "shelter":
            covid_factor = self.covid.housing_factor(day)
        else:
            covid_factor = self.covid.onsite_factor(day)
        return max(0.0, min(factor * covid_factor, 1.3))

    # -- day-level snapshot -----------------------------------------------------

    def records_on(
        self, day: dt.date, *, at_offset: Optional[int] = None
    ) -> Iterator[Tuple[ipaddress.IPv4Address, str]]:
        """(address, hostname) pairs present on ``day``, memoised.

        Derivation walks every device's presence draws; analysis stages
        (leak sampling, snapshot re-reads) revisit the same days many
        times, so the materialised list is kept in a small LRU keyed by
        ``(day, at_offset)``.
        """
        yield from self._records_list(day, at_offset)

    def _records_list(
        self, day: dt.date, at_offset: Optional[int]
    ) -> List[Tuple[ipaddress.IPv4Address, str]]:
        key = (day, at_offset)
        cached = self._records_cache.get(key)
        if cached is not None:
            self._records_cache.move_to_end(key)
            return cached
        records = [
            pair
            for subnet in self.subnets
            for pair in subnet.records_on(
                day, self.rngs, self.day_factor(day, subnet), at_offset=at_offset
            )
        ]
        self._records_cache[key] = records
        while len(self._records_cache) > self.DAY_CACHE_SIZE:
            self._records_cache.popitem(last=False)
        return records

    def counts_by_subnet(self, day: dt.date, *, at_offset: Optional[int] = None) -> Dict[SubnetRole, int]:
        counts: Dict[SubnetRole, int] = {}
        for subnet in self.subnets:
            count = subnet.count_on(
                day, self.rngs, self.day_factor(day, subnet), at_offset=at_offset
            )
            counts[subnet.role] = counts.get(subnet.role, 0) + count
        return counts

    def total_count_on(self, day: dt.date, *, at_offset: Optional[int] = None) -> int:
        return sum(self.counts_by_subnet(day, at_offset=at_offset).values())

    def counts_by_slash24(self, day: dt.date, *, at_offset: Optional[int] = None) -> Dict[str, int]:
        """Records per /24 (the unit of the dynamicity heuristic).

        Subnets no wider than a /24 map to a single key, so their count
        is taken without materialising records — the fast path that
        makes multi-year daily collection tractable.  Results are
        memoised per ``(day, at_offset)`` alongside the record lists.
        """
        cache_key = (day, at_offset)
        cached = self._counts_cache.get(cache_key)
        if cached is not None:
            self._counts_cache.move_to_end(cache_key)
            return dict(cached)
        counts: Dict[str, int] = {}
        for subnet in self.subnets:
            factor = self.day_factor(day, subnet)
            if subnet.prefix.prefixlen >= 24:
                key = self._subnet_slash24(subnet)
                count = subnet.count_on(day, self.rngs, factor, at_offset=at_offset)
                if count:
                    counts[key] = counts.get(key, 0) + count
            else:
                for address, _ in subnet.records_on(day, self.rngs, factor, at_offset=at_offset):
                    key = slash24_of(address)
                    counts[key] = counts.get(key, 0) + 1
        self._counts_cache[cache_key] = counts
        while len(self._counts_cache) > self.DAY_CACHE_SIZE:
            self._counts_cache.popitem(last=False)
        return dict(counts)

    def _subnet_slash24(self, subnet: Subnet) -> str:
        key = self._slash24_cache.get(subnet.prefix)
        if key is None:
            key = slash24_of(subnet.prefix.network_address)
            self._slash24_cache[subnet.prefix] = key
        return key

    def dynamic_subnets(self) -> List[Subnet]:
        return [subnet for subnet in self.subnets if subnet.role.is_dynamic]

    def device_backed_subnets(self) -> List[Subnet]:
        return [subnet for subnet in self.subnets if subnet.devices]

    def all_devices(self) -> List[Device]:
        return [device for subnet in self.subnets for device in subnet.devices]

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, {self.net_type.value}, {self.prefix}, "
            f"{len(self.subnets)} subnets)"
        )


def slash24_of(address) -> str:
    """The /24 prefix key of an address, e.g. '192.0.2.0/24'."""
    ip = ipaddress.ip_address(address)
    return str(ipaddress.ip_network((int(ip) & ~0xFF, 24)))
