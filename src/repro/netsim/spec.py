"""Config-driven world building.

Lets downstream users define custom simulated Internets without code:
a JSON-compatible *spec* lists networks by kind with keyword arguments
that map onto :class:`~repro.netsim.population.NetworkBuilder` methods.

Example::

    spec = {
        "seed": 7,
        "networks": [
            {
                "kind": "academic",
                "name": "Campus-X",
                "prefix": "10.10.0.0/16",
                "suffix": "campus-x.edu",
                "education_prefix": "10.10.1.0/24",
                "housing_prefix": "10.10.2.0/24",
                "staff": 20, "students": 30, "residents": 40,
                "supplemental": True,
            },
            {
                "kind": "isp",
                "name": "Fiber-Y",
                "prefix": "10.20.0.0/16",
                "suffix": "dyn.fiber-y.net",
                "access_prefix": "10.20.1.0/24",
                "subscribers": 50,
            },
        ],
    }
    world = build_world_from_spec(spec)

Networks flagged ``"supplemental": true`` become targets for
:class:`~repro.scan.campaign.SupplementalCampaign`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.netsim.internet import Internet, World, WorldScale
from repro.netsim.population import NetworkBuilder
from repro.netsim.rng import RngStreams

PathLike = Union[str, Path]

_KINDS = ("academic", "enterprise", "government", "isp", "background")

_REQUIRED = {"kind", "name", "prefix", "suffix"}


class SpecError(ValueError):
    """The world spec is malformed."""


def validate_spec(spec: Dict[str, Any]) -> None:
    """Raise :class:`SpecError` if the spec cannot be built."""
    if not isinstance(spec, dict):
        raise SpecError("spec must be a mapping")
    networks = spec.get("networks")
    if not isinstance(networks, list) or not networks:
        raise SpecError("spec needs a non-empty 'networks' list")
    seen_names = set()
    for index, entry in enumerate(networks):
        if not isinstance(entry, dict):
            raise SpecError(f"networks[{index}] must be a mapping")
        missing = _REQUIRED - set(entry)
        if missing:
            raise SpecError(f"networks[{index}] missing keys: {sorted(missing)}")
        if entry["kind"] not in _KINDS:
            raise SpecError(
                f"networks[{index}] has unknown kind {entry['kind']!r} (want one of {_KINDS})"
            )
        if entry["name"] in seen_names:
            raise SpecError(f"duplicate network name {entry['name']!r}")
        seen_names.add(entry["name"])


def build_world_from_spec(spec: Dict[str, Any]) -> World:
    """Build a :class:`~repro.netsim.internet.World` from a spec."""
    validate_spec(spec)
    seed = int(spec.get("seed", 0))
    rngs = RngStreams(seed)
    builder = NetworkBuilder(rngs)
    internet = Internet()
    world = World(internet=internet, rngs=rngs, scale=WorldScale.small())
    for entry in spec["networks"]:
        entry = dict(entry)
        kind = entry.pop("kind")
        supplemental = bool(entry.pop("supplemental", False))
        name = entry.pop("name")
        prefix = entry.pop("prefix")
        suffix = entry.pop("suffix")
        factory = getattr(builder, kind)
        try:
            network = factory(name, prefix, suffix, **entry)
        except TypeError as exc:
            raise SpecError(f"network {name!r}: {exc}") from exc
        internet.add(network)
        if supplemental:
            world.supplemental[name] = network
    return world


def load_spec(path: PathLike) -> Dict[str, Any]:
    """Read a spec from a JSON file."""
    return json.loads(Path(path).read_text())


def build_world_from_file(path: PathLike) -> World:
    return build_world_from_spec(load_spec(path))
