"""Simulation time.

Timestamps are integer seconds since the simulation epoch
(2019-01-01 00:00, local time of the studied networks).  The study
period of the paper — 2019-10-01 through 2021-12-31 — fits comfortably.
Integer seconds keep event ordering exact and make the five-minute
truncation used to merge measurement data (Section 6.1) trivial.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY

EPOCH = dt.datetime(2019, 1, 1)

#: Timestamps are plain ints; the alias documents intent in signatures.
Timestamp = int


def ts(year: int, month: int, day: int, hour: int = 0, minute: int = 0, second: int = 0) -> int:
    """The timestamp for a calendar moment.

    >>> ts(2019, 1, 1)
    0
    >>> ts(2019, 1, 2) == DAY
    True
    """
    moment = dt.datetime(year, month, day, hour, minute, second)
    return int((moment - EPOCH).total_seconds())


def from_datetime(moment: dt.datetime) -> int:
    return int((moment - EPOCH).total_seconds())


def from_date(day: dt.date) -> int:
    """The timestamp of midnight on ``day``."""
    return from_datetime(dt.datetime.combine(day, dt.time()))


def to_datetime(timestamp: int) -> dt.datetime:
    return EPOCH + dt.timedelta(seconds=timestamp)


def date_of(timestamp: int) -> dt.date:
    return to_datetime(timestamp).date()


def start_of_day(timestamp: int) -> int:
    return (timestamp // DAY) * DAY


def truncate(timestamp: int, granularity: int) -> int:
    """Truncate to a granularity; 5-minute truncation merges probe data.

    >>> truncate(ts(2021, 11, 1, 10, 7), 5 * MINUTE) == ts(2021, 11, 1, 10, 5)
    True
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return (timestamp // granularity) * granularity


def weekday(timestamp: int) -> int:
    """ISO weekday index, Monday=0 .. Sunday=6."""
    return date_of(timestamp).weekday()


def is_weekend(timestamp: int) -> bool:
    return weekday(timestamp) >= 5


def hour_of_day(timestamp: int) -> int:
    return (timestamp % DAY) // HOUR


def days_between(start: dt.date, end: dt.date):
    """All dates in [start, end)."""
    day = start
    while day < end:
        yield day
        day += dt.timedelta(days=1)


@dataclass
class SimClock:
    """A mutable clock owned by the simulation engine."""

    now: int = 0

    def advance_to(self, timestamp: int) -> None:
        if timestamp < self.now:
            raise ValueError(f"time cannot move backwards ({timestamp} < {self.now})")
        self.now = timestamp

    @property
    def datetime(self) -> dt.datetime:
        return to_datetime(self.now)
