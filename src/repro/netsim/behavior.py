"""Presence behaviour: when people (and their devices) are on a network.

Profiles generate per-day *sessions* — intervals during which a device
is connected.  They encode the structure the paper's analyses detect:
office workers produce weekday-daytime sessions (the diurnal cycle of
Figure 11), students mix short daytime sessions, campus residents are
present evenings and nights, and always-on hosts never leave.

All randomness flows through the ``rng`` argument so that the day-level
snapshot path and the event-driven path make identical decisions for
the same (entity, day).
"""

from __future__ import annotations

import abc
import datetime as dt
import enum
import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.simtime import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class Session:
    """One connected interval, as offsets in seconds within a day."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= DAY:
            raise ValueError(f"invalid session bounds [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.end


class ProfileKind(enum.Enum):
    OFFICE_WORKER = "office_worker"
    STUDENT = "student"
    RESIDENT = "resident"
    ALWAYS_ON = "always_on"
    VISITOR = "visitor"
    SCRIPTED = "scripted"


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _jittered(rng: random.Random, center: int, spread: int) -> int:
    return int(rng.gauss(center, spread))


class PresenceProfile(abc.ABC):
    """Generates the sessions of one entity for one day."""

    kind: ProfileKind

    @abc.abstractmethod
    def sessions_for_day(
        self, day: dt.date, rng: random.Random, factor: float = 1.0
    ) -> List[Session]:
        """The day's sessions; empty when absent.

        ``factor`` scales attendance (holiday/COVID suppression); a
        factor above 1 (campus housing under lockdown) raises it.
        """

    def is_present_on(self, day: dt.date, rng: random.Random, factor: float = 1.0) -> bool:
        """Day-level presence: any session at all.

        Used by the daily-snapshot fast path; consistent with
        :meth:`sessions_for_day` because it *is* that method.
        """
        return bool(self.sessions_for_day(day, rng, factor))

    @staticmethod
    def of(kind: ProfileKind) -> "PresenceProfile":
        """The default profile instance for a kind."""
        profile = _DEFAULTS.get(kind)
        if profile is None:
            raise ValueError(f"no default profile for {kind}")
        return profile


class OfficeWorkerProfile(PresenceProfile):
    """Weekday office hours, roughly 08:30-17:30, rare weekend visits."""

    kind = ProfileKind.OFFICE_WORKER

    def __init__(self, *, weekday_attendance: float = 0.85, weekend_attendance: float = 0.04):
        self.weekday_attendance = weekday_attendance
        self.weekend_attendance = weekend_attendance

    def sessions_for_day(self, day, rng, factor=1.0):
        base = self.weekend_attendance if day.weekday() >= 5 else self.weekday_attendance
        if rng.random() >= base * factor:
            return []
        start = _clamp(_jittered(rng, int(8.5 * HOUR), 45 * MINUTE), 5 * HOUR, 12 * HOUR)
        end = _clamp(_jittered(rng, int(17.5 * HOUR), HOUR), start + HOUR, 22 * HOUR)
        if rng.random() < 0.25:
            # Off-site lunch splits the day into two sessions.
            lunch_start = _clamp(_jittered(rng, int(12.25 * HOUR), 20 * MINUTE), start + MINUTE, end - MINUTE)
            lunch_end = _clamp(lunch_start + _jittered(rng, 45 * MINUTE, 10 * MINUTE), lunch_start + MINUTE, end)
            if start < lunch_start and lunch_end < end:
                return [Session(start, lunch_start), Session(lunch_end, end)]
        return [Session(start, end)]


class StudentProfile(PresenceProfile):
    """One to three campus sessions between morning and late evening."""

    kind = ProfileKind.STUDENT

    def __init__(self, *, weekday_attendance: float = 0.78, weekend_attendance: float = 0.25):
        self.weekday_attendance = weekday_attendance
        self.weekend_attendance = weekend_attendance

    def sessions_for_day(self, day, rng, factor=1.0):
        base = self.weekend_attendance if day.weekday() >= 5 else self.weekday_attendance
        if rng.random() >= base * factor:
            return []
        count = rng.choice((1, 1, 2, 2, 3))
        sessions: List[Session] = []
        cursor = 8 * HOUR
        for _ in range(count):
            gap = int(rng.uniform(0, 2 * HOUR))
            start = cursor + gap
            duration = int(rng.uniform(30 * MINUTE, 4 * HOUR))
            end = min(start + duration, 23 * HOUR)
            if end - start >= 15 * MINUTE and start < 22 * HOUR:
                sessions.append(Session(start, end))
            cursor = end + 20 * MINUTE
            if cursor >= 21 * HOUR:
                break
        return sessions


class ResidentProfile(PresenceProfile):
    """Campus-housing or home-ISP resident: evenings, nights, mornings."""

    kind = ProfileKind.RESIDENT

    def __init__(
        self,
        *,
        attendance: float = 0.92,
        weekend_stay_home: float = 0.6,
        weekday_stay_home: float = 0.45,
    ):
        self.attendance = attendance
        self.weekend_stay_home = weekend_stay_home
        #: Residential space holds connected devices through the day:
        #: laptops, consoles and TVs left online while their owner is
        #: out.  This keeps housing PTR counts substantial at snapshot
        #: time even on weekdays (cf. Figure 10's housing baseline).
        self.weekday_stay_home = weekday_stay_home

    def sessions_for_day(self, day, rng, factor=1.0):
        if rng.random() >= min(self.attendance * factor, 1.0):
            return []
        # Staying connected through the day: devices left at home, and
        # under stay-at-home measures (factor above 1 signals lockdown
        # pressure on residential space) the owners themselves too —
        # the Figure-10 crossover.
        stay_home = self.weekend_stay_home if day.weekday() >= 5 else self.weekday_stay_home
        if factor > 1.0:
            stay_home = min(0.95, stay_home + (factor - 1.0) * 3.0)
        if rng.random() < stay_home:
            return [Session(0, DAY)]
        sessions = []
        # Morning tail of the night at home.
        morning_end = _clamp(_jittered(rng, int(8.25 * HOUR), 40 * MINUTE), 5 * HOUR, 11 * HOUR)
        sessions.append(Session(0, morning_end))
        # Back home in the evening until midnight.
        evening_start = _clamp(_jittered(rng, int(17.5 * HOUR), 80 * MINUTE), 12 * HOUR, 22 * HOUR)
        sessions.append(Session(evening_start, DAY))
        return sessions


class AlwaysOnProfile(PresenceProfile):
    """Infrastructure and media boxes (roku, printers): never leave."""

    kind = ProfileKind.ALWAYS_ON

    def sessions_for_day(self, day, rng, factor=1.0):
        return [Session(0, DAY)]


class VisitorProfile(PresenceProfile):
    """Occasional short visits (guest Wi-Fi, meeting rooms)."""

    kind = ProfileKind.VISITOR

    def __init__(self, *, attendance: float = 0.18):
        self.attendance = attendance

    def sessions_for_day(self, day, rng, factor=1.0):
        if day.weekday() >= 5:
            return []
        if rng.random() >= self.attendance * factor:
            return []
        start = int(rng.uniform(9 * HOUR, 16 * HOUR))
        duration = int(rng.uniform(20 * MINUTE, 2 * HOUR))
        return [Session(start, min(start + duration, 18 * HOUR))]


class HybridWorkerProfile(PresenceProfile):
    """Post-pandemic hybrid work: office on fixed weekdays only.

    ``office_days`` are ISO weekday indexes (Monday=0).  The default —
    Tuesday through Thursday — is the pattern that emerged as
    restrictions eased, and is what a post-2021 continuation of the
    paper's Figure 9 would observe: a three-day weekly plateau instead
    of five.
    """

    kind = ProfileKind.OFFICE_WORKER

    def __init__(
        self,
        *,
        office_days: tuple = (1, 2, 3),
        attendance: float = 0.9,
    ):
        if not office_days or any(not 0 <= d <= 6 for d in office_days):
            raise ValueError("office_days must be ISO weekday indexes (0-6)")
        self.office_days = frozenset(office_days)
        self.attendance = attendance
        self._office = OfficeWorkerProfile(weekday_attendance=attendance)

    def sessions_for_day(self, day, rng, factor=1.0):
        if day.weekday() not in self.office_days:
            return []
        return self._office.sessions_for_day(day, rng, factor)


class NightShiftProfile(PresenceProfile):
    """Workers present overnight: roughly 22:00 to 06:00.

    A night session spans midnight, so it materialises as an evening
    session today plus a morning tail tomorrow — each day shows the
    two fragments, mirroring how the snapshot path would observe it.
    """

    kind = ProfileKind.OFFICE_WORKER

    def __init__(self, *, attendance: float = 0.85):
        self.attendance = attendance

    def sessions_for_day(self, day, rng, factor=1.0):
        if day.weekday() >= 5:
            return []
        if rng.random() >= self.attendance * factor:
            return []
        start = _clamp(_jittered(rng, 22 * HOUR, 30 * MINUTE), 20 * HOUR, 23 * HOUR)
        end = _clamp(_jittered(rng, 6 * HOUR, 30 * MINUTE), 4 * HOUR, 8 * HOUR)
        return [Session(0, end), Session(start, DAY)]


ScriptFunction = Callable[[dt.date], Optional[List[Session]]]


class ScriptedProfile(PresenceProfile):
    """Explicit, deterministic schedules for case-study personas.

    ``script(day)`` returns the sessions for that day, or ``None`` to
    fall through to the ``default`` profile.  The Life-of-Brian case
    study uses this to pin behaviours like "brians-mbp: a couple of
    hours around noon, every day" and the Cyber-Monday Galaxy Note 9
    appearance.
    """

    kind = ProfileKind.SCRIPTED

    def __init__(self, script: ScriptFunction, default: Optional[PresenceProfile] = None):
        self.script = script
        self.default = default

    def sessions_for_day(self, day, rng, factor=1.0):
        scripted = self.script(day)
        if scripted is not None:
            return list(scripted)
        if self.default is not None:
            return self.default.sessions_for_day(day, rng, factor)
        return []


_DEFAULTS = {
    ProfileKind.OFFICE_WORKER: OfficeWorkerProfile(),
    ProfileKind.STUDENT: StudentProfile(),
    ProfileKind.RESIDENT: ResidentProfile(),
    ProfileKind.ALWAYS_ON: AlwaysOnProfile(),
    ProfileKind.VISITOR: VisitorProfile(),
}
