"""Deterministic fault injection for the measurement plane.

The paper's instruments live on a lossy Internet: ZMap probes go
unanswered, authoritative servers flap, time out or answer SERVFAIL,
and whole name servers disappear for maintenance windows (Section 6.1
rate-limits and retries; Figure 6 breaks lookups down into
NOERROR/NXDOMAIN/SERVFAIL/Timeout classes).  :class:`FaultPlan` brings
those partial failures into the simulation *deterministically*: every
fault decision is a pure function of ``(plan seed, network, address,
timestamp, attempt)``, drawn through a stateless keyed hash — the same
discipline as :class:`repro.netsim.rng.RngStreams.fresh` — so serial,
``--workers N`` and cache-replayed campaign runs observe bit-identical
fault sequences no matter which process asks, or in what order.

Fault classes modelled:

* **echo loss** — an ICMP echo request (or its reply) dropped with
  probability ``icmp_loss_rate``, independently per (address, time,
  attempt);
* **per-query DNS failures** — timeouts (no response on the wire),
  SERVFAIL, and transient REFUSED at per-query Bernoulli rates;
* **server flaps** — short correlated outages: any five-minute window
  is a *flap window* with probability ``flap_rate``, and every query in
  it times out (this is what distinguishes a flaky server from
  independent per-query noise);
* **scheduled outages** — per (network, day) maintenance windows drawn
  from date-keyed streams (``outage_daily_rate`` chance per day, lasting
  ``outage_duration`` seconds, answering nothing or SERVFAIL), plus any
  explicitly listed :class:`OutageWindow`.

``FaultPlan.none()`` / ``mild()`` / ``harsh()`` are the CLI's
``--fault-profile`` presets; :func:`resolve_fault_plan` also honours
the ``REPRO_FAULT_PROFILE`` environment variable so CI can run the
whole suite with faults switched on.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.netsim.simtime import HOUR, MINUTE, DAY

#: Environment variable consulted when no explicit profile is given.
FAULT_PROFILE_ENV = "REPRO_FAULT_PROFILE"

#: Window size for correlated server flaps.
FLAP_WINDOW = 5 * MINUTE

_MASK = (1 << 64) - 1
_DOUBLE_SCALE = 2.0 ** -53


def _splitmix64(value: int) -> int:
    """One round of splitmix64 — a fast, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def keyed_uniform(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in [0, 1) for a composite key.

    Stateless: the same (seed, parts) always yields the same value, in
    any process, in any order — the property that keeps fault-injected
    runs bit-identical across serial, parallel and cached paths.
    Strings are folded in via CRC-32 (stable across interpreters,
    unlike built-in ``hash``); integers directly.
    """
    state = _splitmix64(seed & _MASK)
    for part in parts:
        if isinstance(part, int):
            value = part & _MASK
        else:
            value = zlib.crc32(str(part).encode("utf-8"))
        state = _splitmix64(state ^ value)
    return (state >> 11) * _DOUBLE_SCALE


@dataclass(frozen=True)
class OutageWindow:
    """One explicit authoritative-server outage, in simulation seconds."""

    start: int
    end: int
    #: "timeout" (no response) or "servfail".
    mode: str = "timeout"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage end must be after start")
        if self.mode not in ("timeout", "servfail"):
            raise ValueError("outage mode must be 'timeout' or 'servfail'")

    def covers(self, at: int) -> bool:
        return self.start <= at < self.end


@dataclass(frozen=True)
class NetworkFaultProfile:
    """Per-network fault rates; all probabilities in [0, 1]."""

    icmp_loss_rate: float = 0.0
    rdns_timeout_rate: float = 0.0
    rdns_servfail_rate: float = 0.0
    rdns_refused_rate: float = 0.0
    flap_rate: float = 0.0
    outage_daily_rate: float = 0.0
    outage_duration: int = HOUR
    outages: Tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "icmp_loss_rate",
            "rdns_timeout_rate",
            "rdns_servfail_rate",
            "rdns_refused_rate",
            "flap_rate",
            "outage_daily_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.outage_duration <= 0:
            raise ValueError("outage_duration must be positive")

    @property
    def quiet(self) -> bool:
        """True when this profile can never inject anything."""
        return (
            self.icmp_loss_rate == 0.0
            and self.rdns_timeout_rate == 0.0
            and self.rdns_servfail_rate == 0.0
            and self.rdns_refused_rate == 0.0
            and self.flap_rate == 0.0
            and self.outage_daily_rate == 0.0
            and not self.outages
        )

    def token_dict(self) -> dict:
        """A JSON-stable description (for cache keys)."""
        return {
            "icmp_loss_rate": self.icmp_loss_rate,
            "rdns_timeout_rate": self.rdns_timeout_rate,
            "rdns_servfail_rate": self.rdns_servfail_rate,
            "rdns_refused_rate": self.rdns_refused_rate,
            "flap_rate": self.flap_rate,
            "outage_daily_rate": self.outage_daily_rate,
            "outage_duration": self.outage_duration,
            "outages": [[w.start, w.end, w.mode] for w in self.outages],
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of measurement-plane faults.

    ``default_profile`` applies to every network not listed in
    ``per_network``.  ``icmp_retry_budget`` / ``rdns_retry_budget`` are
    the per-probe retry counts the instruments adopt under this plan
    (Section 6.1's "retry" discipline); ``rdns_backoff_base`` enables
    exponential backoff (with deterministic jitter) in the stub
    resolver.
    """

    name: str = "custom"
    seed: int = 0
    default_profile: NetworkFaultProfile = field(default_factory=NetworkFaultProfile)
    per_network: Mapping[str, NetworkFaultProfile] = field(default_factory=dict)
    icmp_retry_budget: int = 0
    rdns_retry_budget: int = 1
    rdns_backoff_base: float = 0.0

    def __post_init__(self) -> None:
        if self.icmp_retry_budget < 0 or self.rdns_retry_budget < 0:
            raise ValueError("retry budgets must be non-negative")
        if self.rdns_backoff_base < 0:
            raise ValueError("rdns_backoff_base must be non-negative")

    # -- profiles ------------------------------------------------------------

    def profile_for(self, network: str) -> NetworkFaultProfile:
        return self.per_network.get(network, self.default_profile)

    def with_network(self, network: str, profile: NetworkFaultProfile) -> "FaultPlan":
        merged = dict(self.per_network)
        merged[network] = profile
        return replace(self, per_network=merged)

    @property
    def quiet(self) -> bool:
        return self.default_profile.quiet and all(
            profile.quiet for profile in self.per_network.values()
        )

    # -- ICMP ---------------------------------------------------------------

    def echo_lost(self, network: str, address: int, at: int, attempt: int = 0) -> bool:
        """Would this echo request (or its reply) be dropped?"""
        rate = self.profile_for(network).icmp_loss_rate
        if rate <= 0.0:
            return False
        return keyed_uniform(self.seed, "icmp-loss", network, address, at, attempt) < rate

    # -- authoritative servers ------------------------------------------------

    def outage_for_day(self, network: str, day_index: int) -> Optional[OutageWindow]:
        """The scheduled maintenance window for (network, day), if any.

        Drawn from date/network-keyed streams only — never from call
        order — so every path that asks sees the same window.
        """
        profile = self.profile_for(network)
        if profile.outage_daily_rate <= 0.0:
            return None
        if keyed_uniform(self.seed, "outage", network, day_index) >= profile.outage_daily_rate:
            return None
        day_start = day_index * DAY
        latest = max(0, DAY - profile.outage_duration)
        offset = int(keyed_uniform(self.seed, "outage-start", network, day_index) * latest)
        mode = (
            "servfail"
            if keyed_uniform(self.seed, "outage-mode", network, day_index) < 0.3
            else "timeout"
        )
        return OutageWindow(day_start + offset, day_start + offset + profile.outage_duration, mode)

    def server_behavior(self, network: str, key: object, at: int) -> Optional[str]:
        """The injected outcome for one query, or ``None`` to answer.

        ``key`` identifies the query (typically the reverse name or
        address); returns "timeout", "servfail" or "refused".
        """
        profile = self.profile_for(network)
        if profile.quiet:
            return None
        for window in profile.outages:
            if window.covers(at):
                return window.mode
        if profile.outage_daily_rate > 0.0:
            window = self.outage_for_day(network, at // DAY)
            if window is not None and window.covers(at):
                return window.mode
        if profile.flap_rate > 0.0:
            if keyed_uniform(self.seed, "flap", network, at // FLAP_WINDOW) < profile.flap_rate:
                return "timeout"
        roll = keyed_uniform(self.seed, "rdns", network, key, at)
        if roll < profile.rdns_timeout_rate:
            return "timeout"
        roll -= profile.rdns_timeout_rate
        if roll < profile.rdns_servfail_rate:
            return "servfail"
        roll -= profile.rdns_servfail_rate
        if roll < profile.rdns_refused_rate:
            return "refused"
        return None

    # -- resolver backoff ---------------------------------------------------

    def backoff_jitter(self, key: object, attempt: int) -> float:
        """Deterministic jitter factor in [0, 1) for one retry."""
        return keyed_uniform(self.seed, "backoff", key, attempt)

    # -- identity -----------------------------------------------------------

    def cache_token(self) -> str:
        """A stable fingerprint for cache keys and metrics."""
        material = {
            "name": self.name,
            "seed": self.seed,
            "default": self.default_profile.token_dict(),
            "per_network": {
                name: profile.token_dict()
                for name, profile in sorted(self.per_network.items())
            },
            "icmp_retry_budget": self.icmp_retry_budget,
            "rdns_retry_budget": self.rdns_retry_budget,
            "rdns_backoff_base": self.rdns_backoff_base,
        }
        return json.dumps(material, sort_keys=True)

    # -- presets ------------------------------------------------------------

    @classmethod
    def none(cls) -> Optional["FaultPlan"]:
        """The perfectly reliable world (what ``None`` also means)."""
        return None

    @classmethod
    def mild(cls, seed: int = 0) -> "FaultPlan":
        """Realistic background noise: ~2% echo loss, ~2% rDNS errors."""
        return cls(
            name="mild",
            seed=seed,
            default_profile=NetworkFaultProfile(
                icmp_loss_rate=0.02,
                rdns_timeout_rate=0.01,
                rdns_servfail_rate=0.005,
                rdns_refused_rate=0.003,
                flap_rate=0.002,
                outage_daily_rate=0.05,
                outage_duration=HOUR,
            ),
            icmp_retry_budget=2,
            rdns_retry_budget=2,
            rdns_backoff_base=1.0,
        )

    @classmethod
    def harsh(cls, seed: int = 0) -> "FaultPlan":
        """A bad week on the Internet: heavy loss, flappy servers."""
        return cls(
            name="harsh",
            seed=seed,
            default_profile=NetworkFaultProfile(
                icmp_loss_rate=0.12,
                rdns_timeout_rate=0.05,
                rdns_servfail_rate=0.02,
                rdns_refused_rate=0.01,
                flap_rate=0.01,
                outage_daily_rate=0.3,
                outage_duration=2 * HOUR,
            ),
            icmp_retry_budget=3,
            rdns_retry_budget=3,
            rdns_backoff_base=2.0,
        )


#: The CLI's ``--fault-profile`` choices.
FAULT_PROFILES = ("none", "mild", "harsh")


def plan_from_profile(profile: str, seed: int = 0) -> Optional[FaultPlan]:
    """Build the named preset plan ("none" maps to ``None``)."""
    normalized = profile.strip().lower()
    if normalized == "none":
        return None
    if normalized == "mild":
        return FaultPlan.mild(seed)
    if normalized == "harsh":
        return FaultPlan.harsh(seed)
    raise ValueError(
        f"unknown fault profile {profile!r} (choose from {', '.join(FAULT_PROFILES)})"
    )


def resolve_fault_plan(
    profile: Optional[str], seed: int = 0, *, environ: Optional[Mapping[str, str]] = None
) -> Optional[FaultPlan]:
    """Resolve an explicit profile name, falling back to the environment.

    ``profile=None`` consults ``REPRO_FAULT_PROFILE``; an unset or empty
    variable means no faults.  An explicit ``"none"`` always wins, so
    ``--fault-profile none`` overrides the environment.
    """
    if profile is None:
        env = environ if environ is not None else os.environ
        profile = env.get(FAULT_PROFILE_ENV, "").strip() or None
        if profile is None:
            return None
    return plan_from_profile(profile, seed)
