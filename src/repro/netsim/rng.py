"""Deterministic named random streams.

Everything random in the simulation draws from a stream derived from a
root seed and a stable string key, so simulations are reproducible
across runs and processes (``random.Random(str)`` seeds via SHA-512,
which is stable — unlike built-in ``hash``).

Per-(entity, day) streams decouple the day-level snapshot fast path
from the event-driven fine-grained path: both ask for the same stream
and therefore see the same presence decisions.
"""

from __future__ import annotations

import random
from typing import Dict


class RngStreams:
    """A factory of deterministic, independent random streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._cache: Dict[str, random.Random] = {}

    def stream(self, *key_parts: object) -> random.Random:
        """A persistent stream for a key; same key -> same stream object."""
        key = self._key(key_parts)
        stream = self._cache.get(key)
        if stream is None:
            stream = random.Random(key)
            self._cache[key] = stream
        return stream

    def fresh(self, *key_parts: object) -> random.Random:
        """A newly-seeded throwaway stream for a key.

        Unlike :meth:`stream`, repeated calls with the same key restart
        the sequence — this is what per-(device, day) decisions use so
        that any caller, in any order, sees identical draws.
        """
        return random.Random(self._key(key_parts))

    def _key(self, key_parts: tuple) -> str:
        return ":".join([str(self.seed)] + [str(part) for part in key_parts])
