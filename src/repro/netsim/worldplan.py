"""World plans: declarative, shardable descriptions of a simulated Internet.

:func:`~repro.netsim.internet.build_world` assembles the paper's fixed
world in code; :mod:`repro.netsim.spec` builds a world from a JSON
mapping.  Both produce the *whole* world in one process, which caps the
address space a study can cover.  A :class:`WorldPlan` closes that gap:
it is a fully *materialised* list of spec-style network entries — every
keyword argument already computed, nothing drawn from a sequential
world-level RNG — so any contiguous subset of entries builds into
exactly the networks the full plan would build.  That property is what
makes sharding sound: :meth:`WorldPlan.shard_names` partitions the plan
into contiguous shards, each worker process builds only its shard's
networks (all per-network randomness is keyed by network name through
``RngStreams.stream(label, name)``), and the shard outputs merge back
in plan order, bit-identical to a single-process build.

:meth:`WorldPlan.validate` is also where misconfigured reverse zones
fail loudly.  A network prefix that sits between /8 and /24 without
octet alignment cannot be parented correctly in ``in-addr.arpa``
(its rounded origin collides with its siblings'), and prefixes longer
than /24 are only reachable through RFC 2317 glue — which the flat
zone layout provides automatically, but the plan still refuses shapes
that would silently round (see ``origin_rounded`` on
:class:`~repro.dns.zone.ReverseZone`).

:func:`synthetic_plan` generates multi-/16 worlds of arbitrary width —
the scale harness behind ``benchmarks/test_shard_scaling.py`` — mixing
academic, ISP, enterprise and background networks, delegated per-/24
child zones, RFC 2317 classless subnets and rDNS-disabled space.
"""

from __future__ import annotations

import hashlib
import ipaddress
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.dns.zone import RdnsMode
from repro.ipam.policy import POLICY_NAMES, make_policy
from repro.netsim.internet import Internet, World, WorldScale
from repro.netsim.population import NetworkBuilder
from repro.netsim.rng import RngStreams

PathLike = Union[str, Path]

_KINDS = ("academic", "enterprise", "government", "isp", "background")

_REQUIRED = {"kind", "name", "prefix", "suffix"}

_ZONE_LAYOUTS = ("flat", "delegated")


class PlanError(ValueError):
    """The world plan cannot be built (or would build the wrong DNS tree)."""


def contiguous_blocks(items: Sequence[Any], shards: int) -> List[List[Any]]:
    """Partition ``items`` into at most ``shards`` contiguous blocks.

    Blocks preserve order and differ in size by at most one; asking for
    more blocks than items yields one block per item (never an empty
    block).  Shared by plan sharding and the campaign's per-shard
    network batches, so both partition identically.
    """
    if shards < 1:
        raise PlanError(f"shard count must be >= 1, got {shards}")
    items = list(items)
    shards = min(shards, len(items)) or 1
    base, extra = divmod(len(items), shards)
    blocks: List[List[Any]] = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(items[cursor:cursor + size])
        cursor += size
    return blocks


def _aligned_for_reverse_dns(prefix: ipaddress.IPv4Network) -> bool:
    """Can this prefix own a correctly-parented reverse zone?

    Octet-aligned prefixes (/8, /16, /24) map onto classic
    ``in-addr.arpa`` cuts; longer-than-/24 prefixes get RFC 2317
    classless child zones.  Anything between /8 and /24 off an octet
    boundary would *round* its origin and collide with its siblings —
    the silent mis-parenting this validation exists to catch.
    """
    if prefix.prefixlen > 24:
        return True
    return prefix.prefixlen % 8 == 0


class WorldPlan:
    """An ordered, fully-materialised list of network entries plus a seed.

    Entries use the same shape as :mod:`repro.netsim.spec` network
    entries (``kind``/``name``/``prefix``/``suffix`` plus factory
    keyword arguments and an optional ``supplemental`` flag).  Entry
    order is load-bearing: shards are contiguous runs of this list, and
    merged shard output reproduces a full build *because* both iterate
    in plan order.
    """

    def __init__(self, seed: int, entries: Sequence[Dict[str, Any]]):
        self.seed = int(seed)
        self.entries: List[Dict[str, Any]] = [dict(entry) for entry in entries]

    # -- validation --------------------------------------------------------

    def validate(self) -> "WorldPlan":
        """Raise :class:`PlanError` if the plan cannot build correctly."""
        if not self.entries:
            raise PlanError("plan needs at least one network entry")
        seen_names = set()
        prefixes: List[ipaddress.IPv4Network] = []
        for index, entry in enumerate(self.entries):
            if not isinstance(entry, dict):
                raise PlanError(f"entries[{index}] must be a mapping")
            missing = _REQUIRED - set(entry)
            if missing:
                raise PlanError(f"entries[{index}] missing keys: {sorted(missing)}")
            if entry["kind"] not in _KINDS:
                raise PlanError(
                    f"entries[{index}] has unknown kind {entry['kind']!r}"
                    f" (want one of {_KINDS})"
                )
            name = entry["name"]
            if name in seen_names:
                raise PlanError(f"duplicate network name {name!r}")
            seen_names.add(name)
            try:
                prefix = ipaddress.IPv4Network(entry["prefix"])
            except ValueError as exc:
                raise PlanError(f"network {name!r}: bad prefix: {exc}") from exc
            if not _aligned_for_reverse_dns(prefix):
                raise PlanError(
                    f"network {name!r}: prefix {prefix} does not sit on an octet "
                    "boundary, so its reverse zone origin would round and collide "
                    "with sibling allocations; use a /8, /16 or /24-aligned "
                    "allocation, or sub-/24 prefixes (served via RFC 2317 glue)"
                )
            layout = entry.get("zone_layout", "flat")
            if layout not in _ZONE_LAYOUTS:
                raise PlanError(
                    f"network {name!r}: unknown zone_layout {layout!r}"
                    f" (want one of {_ZONE_LAYOUTS})"
                )
            if "update_policy" in entry:
                policy_name = entry["update_policy"]
                if policy_name not in POLICY_NAMES:
                    raise PlanError(
                        f"network {name!r}: unknown update_policy {policy_name!r}"
                        f" (want one of {POLICY_NAMES})"
                    )
                if entry["kind"] == "background":
                    raise PlanError(
                        f"network {name!r}: background networks have no "
                        "DHCP-coupled DNS updates, so update_policy does "
                        "not apply"
                    )
            if "rdns_mode" in entry:
                try:
                    mode = RdnsMode.parse(entry["rdns_mode"])
                except ValueError as exc:
                    raise PlanError(f"network {name!r}: {exc}") from exc
                if mode is RdnsMode.RFC2317 and prefix.prefixlen <= 24:
                    # The mode applies to the factory's dynamic-client
                    # subnets; a whole-/16 network cannot promise its
                    # /24s will be classless.  Catch the obvious misuse.
                    for key, value in entry.items():
                        if key.endswith("_prefix"):
                            sub = ipaddress.IPv4Network(value)
                            if sub.prefixlen <= 24:
                                raise PlanError(
                                    f"network {name!r}: rdns_mode=rfc2317 needs "
                                    f"sub-/24 client subnets, got {key}={sub}"
                                )
            prefixes.append(prefix)
        prefixes.sort(key=lambda p: (int(p.network_address), p.prefixlen))
        for left, right in zip(prefixes, prefixes[1:]):
            if left.overlaps(right):
                raise PlanError(f"prefixes overlap: {left} and {right}")
        return self

    # -- identity ----------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {"seed": self.seed, "networks": [dict(e) for e in self.entries]}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WorldPlan":
        if not isinstance(payload, dict) or "networks" not in payload:
            raise PlanError("plan payload must be a mapping with a 'networks' list")
        return cls(payload.get("seed", 0), payload["networks"])

    def fingerprint(self) -> str:
        """A deterministic digest of the plan — the sharded cache key.

        Unlike :meth:`~repro.netsim.internet.Internet.cache_token`, this
        never needs the world built: two processes holding the same plan
        JSON agree on the fingerprint before constructing a single
        network, which is what lets shard workers share one cache
        namespace with the coordinating process.
        """
        canonical = json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def policy_token(self) -> Optional[str]:
        """The plan's declared ``update_policy`` mix, or ``None``.

        Folded into snapshot *and* campaign cache keys alongside the
        plan fingerprint, so two evaluation-matrix cells that differ
        only in DNS-update policy can never share a cache entry even
        if a future fingerprint change stopped covering the entries.
        ``None`` (no entry declares a policy) keeps pre-existing cache
        keys valid.
        """
        declared = sorted(
            {
                f"{entry['name']}={entry['update_policy']}"
                for entry in self.entries
                if "update_policy" in entry
            }
        )
        return ",".join(declared) if declared else None

    def with_update_policy(self, policy_name: str) -> "WorldPlan":
        """A copy of the plan with every eligible entry on ``policy_name``.

        "Eligible" means every kind whose factory wires a DNS-update
        policy into its dynamic-client subnets (academic, enterprise,
        government, isp); background networks model third-party space
        whose naming is not DHCP-coupled and keep their entries
        untouched.  The copy fingerprints differently from the base
        plan, which is what keys each evaluation-matrix cell's caches.
        """
        if policy_name not in POLICY_NAMES:
            raise PlanError(
                f"unknown update_policy {policy_name!r} (want one of {POLICY_NAMES})"
            )
        entries = []
        for entry in self.entries:
            entry = dict(entry)
            if entry.get("kind") != "background":
                entry["update_policy"] = policy_name
            entries.append(entry)
        return WorldPlan(self.seed, entries)

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_payload(), indent=2) + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "WorldPlan":
        return cls.from_payload(json.loads(Path(path).read_text()))

    # -- sharding ----------------------------------------------------------

    @property
    def network_names(self) -> List[str]:
        return [entry["name"] for entry in self.entries]

    @property
    def supplemental_names(self) -> List[str]:
        return [e["name"] for e in self.entries if e.get("supplemental")]

    def shard_names(self, shards: int) -> List[List[str]]:
        """Partition the plan into ``shards`` contiguous name blocks.

        Blocks follow plan order and differ in size by at most one, so
        merging shard results in shard-id order walks the networks in
        exactly the order a single-shard run does.  Asking for more
        shards than entries yields fewer (never empty) blocks.
        """
        return contiguous_blocks(self.network_names, shards)

    # -- building ----------------------------------------------------------

    def build(self, names: Optional[Sequence[str]] = None) -> World:
        """Build the plan's world — or just the networks in ``names``.

        A subset build produces networks identical to the ones a full
        build produces (all randomness is keyed per network name), so a
        shard worker holding only its own networks derives the same
        counts and PTR records the full world would.
        """
        self.validate()
        wanted = None if names is None else set(names)
        if wanted is not None:
            known = set(self.network_names)
            unknown = wanted - known
            if unknown:
                raise PlanError(f"unknown network names: {sorted(unknown)}")
        rngs = RngStreams(self.seed)
        builder = NetworkBuilder(rngs)
        internet = Internet()
        world = World(internet=internet, rngs=rngs, scale=WorldScale.small())
        for entry in self.entries:
            if wanted is not None and entry["name"] not in wanted:
                continue
            entry = dict(entry)
            kind = entry.pop("kind")
            supplemental = bool(entry.pop("supplemental", False))
            name = entry.pop("name")
            prefix = entry.pop("prefix")
            suffix = entry.pop("suffix")
            # A plan carries the policy by *name* (entries must stay
            # pure JSON); the instance is built here, per network, so
            # subset builds hand every factory the same fresh policy a
            # full build would.
            update_policy = entry.pop("update_policy", None)
            if update_policy is not None:
                entry["policy"] = make_policy(update_policy, suffix)
            factory = getattr(builder, kind)
            try:
                network = factory(name, prefix, suffix, **entry)
            except TypeError as exc:
                raise PlanError(f"network {name!r}: {exc}") from exc
            internet.add(network)
            if supplemental:
                world.supplemental[name] = network
        return world


class LazyPlanInternet:
    """An :class:`~repro.netsim.internet.Internet` built on first use.

    Sharded collection never needs the full world in the coordinating
    process — shard workers build their own slices — but the merged
    :class:`~repro.scan.snapshot.SnapshotSeries` still wants an
    internet for the record-level paths (``records_on``,
    ``sample_records``).  This proxy defers (and memoises) the full
    plan build until one of those paths actually touches it, so count-
    level analyses (dynamicity, occupancy) stay memory-bounded.
    """

    def __init__(self, plan: "WorldPlan"):
        self._plan = plan
        self._built: Optional[Internet] = None

    @property
    def plan(self) -> "WorldPlan":
        return self._plan

    def materialized(self) -> bool:
        return self._built is not None

    def _materialize(self) -> Internet:
        if self._built is None:
            self._built = self._plan.build().internet
        return self._built

    def cache_token(self) -> str:
        # Answerable from the plan alone — keeps cache keying cheap.
        return f"plan:{self._plan.fingerprint()}"

    def __getattr__(self, name: str) -> Any:
        return getattr(self._materialize(), name)

    def __len__(self) -> int:
        return len(self._materialize())


def _slash24(base: ipaddress.IPv4Address, offset_24s: int, prefixlen: int = 24) -> str:
    return str(ipaddress.ip_network((int(base) + offset_24s * 256, prefixlen)))


def synthetic_plan(
    seed: int = 0,
    *,
    slash16s: int = 4,
    people: int = 12,
    base: str = "100.0.0.0",
    supplemental_every: int = 2,
    zone_layout: str = "delegated",
) -> WorldPlan:
    """A multi-/16 world plan of ``slash16s`` networks, one per /16.

    The generator behind the shard-scaling benchmark and the CI shard
    smoke test.  Network kinds cycle academic → isp → background →
    enterprise so every /16 block exercises a different corner of the
    stack: academics get delegated per-/24 child zones and supplemental
    campaigns (every ``supplemental_every``-th academic), enterprises
    alternate RFC 2317 classless /25 offices with rDNS-disabled space,
    backgrounds mix static, dynamic and vanity /24s.  Everything is
    computed from the entry index — no RNG draws at plan time — so the
    plan is a pure function of its arguments and fingerprints stably.

    ``slash16s`` sets the address-space width directly: each /16 is 256
    /24-sized prefixes, so ``slash16s=400`` spans 102 400 prefixes.
    """
    if slash16s < 1:
        raise PlanError(f"slash16s must be >= 1, got {slash16s}")
    entries: List[Dict[str, Any]] = []
    first = ipaddress.IPv4Address(base)
    academics = 0
    enterprises = 0
    for index in range(slash16s):
        prefix = ipaddress.ip_network((int(first) + (index << 16), 16))
        net_base = prefix.network_address
        kind = ("academic", "isp", "background", "enterprise")[index % 4]
        if kind == "academic":
            entries.append(
                {
                    "kind": "academic",
                    "name": f"plan-academic-{academics:04d}",
                    "prefix": str(prefix),
                    "suffix": f"campus.plan{academics:04d}.edu",
                    "education_prefix": _slash24(net_base, 10),
                    "housing_prefix": _slash24(net_base, 20),
                    "servers_prefix": _slash24(net_base, 1, 26),
                    "staff": people // 2,
                    "students": people // 2,
                    "residents": people // 2,
                    "zone_layout": zone_layout,
                    "supplemental": supplemental_every > 0
                    and academics % supplemental_every == 0,
                }
            )
            academics += 1
        elif kind == "isp":
            entries.append(
                {
                    "kind": "isp",
                    "name": f"plan-isp-{index:04d}",
                    "prefix": str(prefix),
                    "suffix": f"dyn.plan{index:04d}-isp.net",
                    "access_prefix": _slash24(net_base, 10),
                    "subscribers": people,
                    "icmp_response_rate": 0.2,
                    "zone_layout": zone_layout,
                }
            )
        elif kind == "background":
            entries.append(
                {
                    "kind": "background",
                    "name": f"plan-bg-{index:04d}",
                    "prefix": str(prefix),
                    "suffix": f"as{index + 64000:d}.plan.example.net",
                    "static_24s": 2,
                    "dynamic_24s": 2,
                    "vanity": index % 3 == 0,
                    "vanity_hosting_24s": 1 if index % 6 == 0 else 0,
                    "zone_layout": zone_layout,
                }
            )
        else:
            rfc2317 = enterprises % 2 == 0
            entries.append(
                {
                    "kind": "enterprise",
                    "name": f"plan-corp-{enterprises:04d}",
                    "prefix": str(prefix),
                    "suffix": f"corp.plan{enterprises:04d}.com",
                    "office_prefix": _slash24(net_base, 10, 25),
                    "employees": people // 2,
                    "rdns_mode": "rfc2317" if rfc2317 else "disabled",
                    "zone_layout": zone_layout,
                }
            )
            enterprises += 1
    return WorldPlan(seed, entries).validate()
