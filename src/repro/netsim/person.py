"""People: device owners with given names.

The generator draws given names from the SSA-style popularity
distribution (:mod:`repro.datasets.names`) so the simulated PTR space
reproduces the decreasing-count shape of the paper's Figure 2, and
mixes in non-top-50 names that the analysis must not match.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.datasets.names import OTHER_GIVEN_NAMES, name_popularity_weights
from repro.netsim.behavior import PresenceProfile, ProfileKind
from repro.netsim.device import (
    Device,
    DeviceKind,
    DeviceNaming,
    sample_model,
)


@dataclass
class Person:
    """A device owner."""

    person_id: str
    given_name: str
    profile: PresenceProfile
    devices: List[Device] = field(default_factory=list)


class PersonGenerator:
    """Builds people and their device fleets, deterministically."""

    def __init__(
        self,
        rng: random.Random,
        *,
        top50_share: float = 0.55,
        possessive_naming_rate: float = 0.55,
        no_host_name_rate: float = 0.08,
        release_rate: float = 0.8,
    ):
        if not 0 <= top50_share <= 1:
            raise ValueError("top50_share must be in [0, 1]")
        self.rng = rng
        self.top50_share = top50_share
        self.possessive_naming_rate = possessive_naming_rate
        self.no_host_name_rate = no_host_name_rate
        self.release_rate = release_rate
        weights = name_popularity_weights()
        self._top_names = list(weights)
        self._top_weights = [weights[name] for name in self._top_names]

    def draw_name(self) -> str:
        if self.rng.random() < self.top50_share:
            return self.rng.choices(self._top_names, weights=self._top_weights, k=1)[0]
        return self.rng.choice(OTHER_GIVEN_NAMES)

    def draw_naming(self) -> DeviceNaming:
        roll = self.rng.random()
        if roll < self.no_host_name_rate:
            return DeviceNaming.NONE
        roll = self.rng.random()
        if roll < self.possessive_naming_rate:
            return DeviceNaming.OWNER_POSSESSIVE
        if roll < self.possessive_naming_rate + 0.3:
            return DeviceNaming.STANDALONE
        return DeviceNaming.GENERIC

    def make_person(
        self,
        person_id: str,
        *,
        profile_kind: ProfileKind = ProfileKind.OFFICE_WORKER,
        device_count: Optional[int] = None,
    ) -> Person:
        """One person with 1-3 devices (phone almost always present)."""
        profile = PresenceProfile.of(profile_kind)
        person = Person(person_id, self.draw_name(), profile)
        if device_count is None:
            device_count = self.rng.choices((1, 2, 3), weights=(5, 4, 1), k=1)[0]
        for index in range(device_count):
            person.devices.append(self._make_device(person, index))
        return person

    def _make_device(self, person: Person, index: int) -> Device:
        model = sample_model(self.rng)
        naming = self.draw_naming()
        if self.rng.random() >= model.sends_host_name_rate:
            naming = DeviceNaming.NONE
        participation = 1.0 if model.kind is DeviceKind.PHONE else self.rng.uniform(0.5, 0.9)
        return Device(
            device_id=f"{person.person_id}-d{index}",
            model=model,
            naming=naming,
            owner_name=person.given_name,
            owner_id=person.person_id,
            profile=person.profile,
            sends_release=self.rng.random() < self.release_rate,
            icmp_responds=self.rng.random() < model.icmp_response_rate,
            session_participation=participation,
            generic_suffix=f"{self.rng.randrange(16**6):06x}",
        )

    def make_population(
        self,
        count: int,
        *,
        id_prefix: str = "p",
        profile_kind: ProfileKind = ProfileKind.OFFICE_WORKER,
    ) -> List[Person]:
        return [
            self.make_person(f"{id_prefix}{index}", profile_kind=profile_kind)
            for index in range(count)
        ]
