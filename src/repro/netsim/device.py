"""Devices and the names they leak.

A device's DHCP Host Name is where the privacy exposure starts: phone
and computer operating systems fill it with the device name, which by
default is formed "of the owner's name and make or model (e.g.,
Brian's iPhone)" (Section 5.2).  The model catalog covers the terms of
the paper's Figure 3 and the naming styles seen in the wild.
"""

from __future__ import annotations

import datetime as dt
import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netsim.behavior import PresenceProfile, ProfileKind, Session


class DeviceKind(enum.Enum):
    PHONE = "phone"
    TABLET = "tablet"
    LAPTOP = "laptop"
    DESKTOP = "desktop"
    STREAMER = "streamer"


@dataclass(frozen=True)
class DeviceModel:
    """One make/model with its default device-name rendering.

    ``possessive_pattern`` renders the OS-default device name given an
    owner's (capitalised) given name; ``standalone_name`` is the name
    when no owner personalisation happens.
    """

    key: str
    kind: DeviceKind
    possessive_pattern: str
    standalone_name: str
    #: Share of these devices whose DHCP client sends a Host Name at all.
    sends_host_name_rate: float = 0.9
    #: Share responding to ICMP echo when the network permits it.
    icmp_response_rate: float = 0.8

    def possessive_name(self, owner_name: str) -> str:
        return self.possessive_pattern.format(owner=owner_name.capitalize())


#: Catalogue keyed as in Figure 3; weights steer population sampling.
MODEL_CATALOG: List[Tuple[DeviceModel, float]] = [
    (DeviceModel("iphone", DeviceKind.PHONE, "{owner}'s iPhone", "iPhone"), 24.0),
    (DeviceModel("android", DeviceKind.PHONE, "{owner}s-Android", "android-device", icmp_response_rate=0.6), 12.0),
    (DeviceModel("galaxy-s10", DeviceKind.PHONE, "{owner}s-Galaxy-S10", "Galaxy-S10", icmp_response_rate=0.6), 6.0),
    (DeviceModel("galaxy-note9", DeviceKind.PHONE, "{owner}s-Galaxy-Note9", "Galaxy-Note9", icmp_response_rate=0.6), 3.0),
    (DeviceModel("phone", DeviceKind.PHONE, "{owner}s-Phone", "phone"), 6.0),
    (DeviceModel("ipad", DeviceKind.TABLET, "{owner}'s iPad", "iPad"), 8.0),
    (DeviceModel("air", DeviceKind.LAPTOP, "{owner}s-Air", "MacBook-Air"), 7.0),
    (DeviceModel("mbp", DeviceKind.LAPTOP, "{owner}s-MBP", "MacBook-Pro"), 8.0),
    (DeviceModel("macbook", DeviceKind.LAPTOP, "{owner}s-MacBook", "MacBook"), 4.0),
    (DeviceModel("dell", DeviceKind.LAPTOP, "{owner}s-Dell-Laptop", "DELL-LAPTOP"), 6.0),
    (DeviceModel("lenovo", DeviceKind.LAPTOP, "{owner}s-Lenovo", "LENOVO-PC"), 5.0),
    (DeviceModel("laptop", DeviceKind.LAPTOP, "{owner}s-Laptop", "LAPTOP"), 5.0),
    (DeviceModel("desktop", DeviceKind.DESKTOP, "{owner}s-Desktop", "DESKTOP-PC", icmp_response_rate=0.9), 4.0),
    (DeviceModel("chrome", DeviceKind.LAPTOP, "{owner}s-Chromebook", "chromebook"), 3.0),
    (DeviceModel("roku", DeviceKind.STREAMER, "Roku-{owner}", "Roku-Living-Room", sends_host_name_rate=0.95), 2.0),
]

_MODEL_BY_KEY = {model.key: model for model, _ in MODEL_CATALOG}


def model_by_key(key: str) -> DeviceModel:
    try:
        return _MODEL_BY_KEY[key]
    except KeyError as exc:
        raise KeyError(f"unknown device model {key!r}") from exc


def sample_model(rng: random.Random) -> DeviceModel:
    models = [model for model, _ in MODEL_CATALOG]
    weights = [weight for _, weight in MODEL_CATALOG]
    return rng.choices(models, weights=weights, k=1)[0]


class DeviceNaming(enum.Enum):
    """How the device name (hence the DHCP Host Name) is formed."""

    OWNER_POSSESSIVE = "owner_possessive"  # "Brian's iPhone"
    STANDALONE = "standalone"              # "Galaxy-S10"
    GENERIC = "generic"                    # "DESKTOP-4F2K9Q"
    NONE = "none"                          # no Host Name sent


@dataclass
class Device:
    """One client device."""

    device_id: str
    model: DeviceModel
    naming: DeviceNaming
    owner_name: Optional[str] = None
    owner_id: Optional[str] = None
    profile: PresenceProfile = field(default_factory=lambda: PresenceProfile.of(ProfileKind.OFFICE_WORKER))
    sends_release: bool = True
    icmp_responds: bool = True
    #: Probability of joining any given owner session (phones ~1.0,
    #: laptops lower: they stay in the bag some days).
    session_participation: float = 1.0
    generic_suffix: str = "0000"
    #: Memo of the last (day, factor) session computation; collection
    #: passes over the same day hit this instead of re-drawing.
    _session_cache: Optional[Tuple[int, float, List[Session]]] = field(
        default=None, repr=False, compare=False
    )

    def host_name(self) -> Optional[str]:
        """The DHCP Host Name this device sends, or None."""
        if self.naming is DeviceNaming.NONE:
            return None
        if self.naming is DeviceNaming.OWNER_POSSESSIVE:
            if self.owner_name is None:
                return self.model.standalone_name
            return self.model.possessive_name(self.owner_name)
        if self.naming is DeviceNaming.STANDALONE:
            return self.model.standalone_name
        return f"DESKTOP-{self.generic_suffix.upper()}"

    def sessions_for_day(self, day: dt.date, rng_streams, factor: float = 1.0) -> List[Session]:
        """The device's sessions for one day, deterministically.

        Owner-level sessions are drawn from a stream keyed by the owner
        (so all of one person's devices share them); the device then
        participates in each with ``session_participation`` drawn from
        a device-keyed stream.
        """
        ordinal = day.toordinal()
        cached = self._session_cache
        if cached is not None and cached[0] == ordinal and cached[1] == factor:
            return cached[2]
        owner_key = self.owner_id or self.device_id
        # Owner-level sessions are a pure function of (owner, day,
        # factor, profile): every device of one owner re-draws the same
        # stream, so the day's draw is shared across their devices via a
        # cache on the rng_streams object (which lives exactly as long
        # as the world the draws belong to).
        shared = getattr(rng_streams, "_owner_session_cache", None)
        if shared is None:
            shared = {}
            rng_streams._owner_session_cache = shared
        share_key = (owner_key, ordinal, factor, id(self.profile))
        sessions = shared.get(share_key)
        if sessions is None:
            owner_rng = rng_streams.fresh("sessions", owner_key, ordinal)
            sessions = self.profile.sessions_for_day(day, owner_rng, factor)
            if len(shared) >= 262144:
                shared.clear()
            shared[share_key] = sessions
        if sessions and self.session_participation < 1.0:
            device_rng = rng_streams.fresh("participation", self.device_id, ordinal)
            sessions = [
                s for s in sessions if device_rng.random() < self.session_participation
            ]
        self._session_cache = (ordinal, factor, sessions)
        return sessions

    def is_present_on(self, day: dt.date, rng_streams, factor: float = 1.0) -> bool:
        return bool(self.sessions_for_day(day, rng_streams, factor))

    def is_present_at(self, day: dt.date, offset: int, rng_streams, factor: float = 1.0) -> bool:
        """Presence at a specific second-of-day.

        This is what a point-in-time snapshot sweep (OpenINTEL queries
        each address once per day) actually observes.
        """
        return any(
            session.contains(offset)
            for session in self.sessions_for_day(day, rng_streams, factor)
        )
