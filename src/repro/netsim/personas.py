"""Scripted case-study personas: the Brians of Section 7.1.

Figure 8 of the paper tracks five hostnames containing the given name
Brian on Academic-A over six weeks: ``brians-air``,
``brians-galaxy-note9``, ``brians-ipad``, ``brians-mbp`` and
``brians-phone``.  The paper infers "two or maybe three" distinct
Brians, notes that ``brians-mbp`` shows "a couple of hours around noon,
every day" in week two, that phone and mbp leave for the Thanksgiving
weekend, and that ``brians-galaxy-note9`` first appears on Cyber Monday
afternoon — a Black-Friday-sale purchase, they speculate.

These persona builders reproduce exactly those behaviours, on top of
otherwise-ordinary profiles, so the tracking analysis has its ground
truth.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.behavior import (
    OfficeWorkerProfile,
    ResidentProfile,
    ScriptedProfile,
    Session,
)
from repro.netsim.calendar import cyber_monday, thanksgiving
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.simtime import DAY, HOUR, MINUTE


def _noon_session(day: dt.date) -> List[Session]:
    # "a couple of hours around noon, every day" — week-two mbp pattern.
    start = 11 * HOUR + (day.toordinal() % 3) * 10 * MINUTE
    return [Session(start, start + 2 * HOUR + 20 * MINUTE)]


def _workday_session(day: dt.date) -> List[Session]:
    start = 8 * HOUR + 30 * MINUTE + (day.toordinal() % 4) * 15 * MINUTE
    end = 17 * HOUR + (day.toordinal() % 3) * 20 * MINUTE
    return [Session(start, end)]


def _in_thanksgiving_trip(day: dt.date, year: int) -> bool:
    """Thursday through Sunday of the Thanksgiving weekend."""
    start = thanksgiving(year)
    return start <= day <= start + dt.timedelta(days=3)


# Persona scripts are module-level callables (not closures) so that a
# built world pickles — parallel snapshot collection ships the whole
# Internet to worker processes.


@dataclass(frozen=True)
class _OfficePhoneScript:
    year: int

    def __call__(self, day: dt.date) -> Optional[List[Session]]:
        if _in_thanksgiving_trip(day, self.year):
            return []
        if day.weekday() >= 5:
            return []
        return _workday_session(day)


@dataclass(frozen=True)
class _OfficeMbpScript:
    year: int

    def __call__(self, day: dt.date) -> Optional[List[Session]]:
        if _in_thanksgiving_trip(day, self.year):
            return []
        if day.weekday() >= 5:
            return []
        return _noon_session(day)


def _evening_sessions(day: dt.date, year: int) -> List[Session]:
    if _in_thanksgiving_trip(day, year):
        return []
    start = 17 * HOUR + 30 * MINUTE + (day.toordinal() % 5) * 12 * MINUTE
    sessions = [Session(start, DAY)]
    if day.weekday() >= 5:
        sessions.insert(0, Session(9 * HOUR, 13 * HOUR))
    return sessions


@dataclass(frozen=True)
class _ResidentAirScript:
    year: int

    def __call__(self, day: dt.date) -> Optional[List[Session]]:
        return _evening_sessions(day, self.year)


@dataclass(frozen=True)
class _ResidentIpadScript:
    year: int

    def __call__(self, day: dt.date) -> Optional[List[Session]]:
        # The tablet skips some evenings.
        if day.toordinal() % 3 == 0:
            return []
        return _evening_sessions(day, self.year)


@dataclass(frozen=True)
class _ResidentNote9Script:
    year: int

    def __call__(self, day: dt.date) -> Optional[List[Session]]:
        first_day = cyber_monday(self.year)
        if day < first_day:
            return []
        if day == first_day:
            # First powered on in the afternoon of Cyber Monday.
            return [Session(14 * HOUR + 20 * MINUTE, DAY)]
        return _evening_sessions(day, self.year)


def make_office_brian(year: int = 2021, *, person_id: str = "brian-office") -> List[Device]:
    """Brian #1: staff; phone + MacBook Pro on the education subnet.

    Weekday presence, with the MBP settling into the regular
    around-noon pattern, and both devices gone over Thanksgiving.
    """
    phone_script = _OfficePhoneScript(year)
    mbp_script = _OfficeMbpScript(year)

    phone = Device(
        device_id=f"{person_id}-phone",
        model=model_by_key("phone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=f"{person_id}-phone",  # own stream: fully scripted anyway
        profile=ScriptedProfile(phone_script, default=OfficeWorkerProfile()),
        sends_release=True,
        icmp_responds=True,
    )
    mbp = Device(
        device_id=f"{person_id}-mbp",
        model=model_by_key("mbp"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=f"{person_id}-mbp",
        profile=ScriptedProfile(mbp_script, default=OfficeWorkerProfile()),
        sends_release=False,  # silent leaver: its PTR lingers to lease expiry
        icmp_responds=True,
    )
    return [phone, mbp]


def make_resident_brian(year: int = 2021, *, person_id: str = "brian-resident") -> List[Device]:
    """Brian #2: campus-housing resident; MacBook Air, iPad, and — from
    Cyber Monday afternoon — a Galaxy Note 9."""
    air_script = _ResidentAirScript(year)
    ipad_script = _ResidentIpadScript(year)
    note9_script = _ResidentNote9Script(year)

    air = Device(
        device_id=f"{person_id}-air",
        model=model_by_key("air"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=f"{person_id}-air",
        profile=ScriptedProfile(air_script, default=ResidentProfile()),
        sends_release=True,
        icmp_responds=True,
    )
    ipad = Device(
        device_id=f"{person_id}-ipad",
        model=model_by_key("ipad"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=f"{person_id}-ipad",
        profile=ScriptedProfile(ipad_script, default=ResidentProfile()),
        sends_release=False,
        icmp_responds=True,
    )
    note9 = Device(
        device_id=f"{person_id}-note9",
        model=model_by_key("galaxy-note9"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=f"{person_id}-note9",
        profile=ScriptedProfile(note9_script, default=ResidentProfile()),
        sends_release=True,
        icmp_responds=True,
    )
    return [air, ipad, note9]


def make_brian_devices(year: int = 2021) -> Tuple[List[Device], List[Device]]:
    """(education-subnet devices, housing-subnet devices) for the Brians."""
    return make_office_brian(year), make_resident_brian(year)

#: The five hostname labels Figure 8 tracks, in its row order.
BRIAN_HOSTNAME_LABELS = [
    "brians-air",
    "brians-galaxy-note9",
    "brians-ipad",
    "brians-mbp",
    "brians-phone",
]
