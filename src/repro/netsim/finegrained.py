"""Event-driven, second-resolution simulation of client activity.

The daily-snapshot path in :mod:`repro.netsim.network` is enough for
the longitudinal analyses, but the paper's supplemental measurement
(Section 6) observes *sub-day* dynamics: devices joining, renewing,
releasing or silently leaving, and the DHCP/IPAM machinery adding and
removing PTR records in response.  :class:`NetworkRuntime` drives the
full protocol stack — DHCP client/server, IPAM bridge, reverse zone —
from the same per-device session schedules the snapshot path uses, on a
:class:`~repro.netsim.engine.SimulationEngine`.
"""

from __future__ import annotations

import datetime as dt
import ipaddress
from typing import Dict, List, Optional

from repro.dhcp.client import DhcpClient
from repro.dhcp.pool import AddressPool
from repro.dhcp.server import DhcpServer
from repro.ipam.system import IpamSystem
from repro.netsim.device import Device
from repro.netsim.engine import SimulationEngine
from repro.netsim.network import (
    RESERVED_LOW_ADDRESSES,
    IcmpPolicy,
    Network,
    Subnet,
)
from repro.netsim.simtime import DAY, from_date

DEFAULT_SWEEP_INTERVAL = 300  # expire leases at probe granularity

#: Outcomes of one echo request (:meth:`NetworkRuntime.echo_outcome`).
ECHO_REPLY = 0  # the host answered
ECHO_SILENT = 1  # nothing there (offline, ping-blocking, non-responding)
ECHO_LOST = 2  # the host would answer, but the packet was dropped


class _SubnetRuntime:
    """DHCP server + IPAM bridge for one device-backed subnet."""

    def __init__(self, network: Network, subnet: Subnet):
        self.subnet = subnet
        reserved = list(subnet.prefix)[:RESERVED_LOW_ADDRESSES]
        self.pool = AddressPool(subnet.prefix, reserved=reserved)
        self.server = DhcpServer(
            self.pool,
            server_id=f"dhcp.{network.suffix}",
            lease_time=network.lease_time,
        )
        assert subnet.policy is not None
        # Route PTR writes to the zone actually serving this subnet —
        # a delegated per-/24 child or RFC 2317 classless zone when the
        # network uses those layouts, the apex zone otherwise.  A
        # DISABLED subnet keeps DHCP churning but publishes nothing.
        zone = network.zone_for_subnet(subnet)
        if zone is None:
            self.ipam = None
        else:
            self.ipam = IpamSystem(zone, subnet.policy).attach(self.server)


class NetworkRuntime:
    """Runs one network's client churn on a simulation engine."""

    def __init__(
        self,
        network: Network,
        engine: SimulationEngine,
        *,
        sweep_interval: int = DEFAULT_SWEEP_INTERVAL,
        fault_plan=None,
    ):
        self.network = network
        self.engine = engine
        self.sweep_interval = sweep_interval
        #: Optional :class:`repro.netsim.faults.FaultPlan`; when set,
        #: echo replies are dropped probabilistically (deterministic,
        #: keyed by network/address/time/attempt).
        self.fault_plan = fault_plan
        self._subnets: List[_SubnetRuntime] = [
            _SubnetRuntime(network, subnet) for subnet in network.device_backed_subnets()
        ]
        self._clients: Dict[str, DhcpClient] = {}
        self._online: Dict[ipaddress.IPv4Address, Device] = {}
        self._renew_generation: Dict[str, int] = {}
        self._last_day: Optional[dt.date] = None
        self.joins = 0
        self.leaves = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self, first_day: dt.date, last_day: dt.date) -> None:
        """Schedule the simulation from ``first_day`` through ``last_day``.

        Each midnight generates that day's sessions for every device
        (lazily, to keep the event queue small), and every subnet runs
        a periodic lease-expiry sweep.
        """
        if last_day < first_day:
            raise ValueError("last_day before first_day")
        self._last_day = last_day
        day = first_day
        while day <= last_day:
            self.engine.schedule(max(from_date(day), self.engine.now), self._day_generator(day))
            day += dt.timedelta(days=1)
        end = from_date(last_day) + DAY
        for runtime in self._subnets:
            self._schedule_sweep(runtime, end)

    def _schedule_sweep(self, runtime: _SubnetRuntime, end: int) -> None:
        def sweep() -> None:
            runtime.server.expire_leases(self.engine.now)
            next_at = self.engine.now + self.sweep_interval
            if next_at <= end:
                self.engine.schedule(next_at, sweep)

        self.engine.schedule(self.engine.now + self.sweep_interval, sweep)

    def _day_generator(self, day: dt.date):
        def generate() -> None:
            midnight = from_date(day)
            for runtime in self._subnets:
                factor = self.network.day_factor(day, runtime.subnet)
                for device in runtime.subnet.devices:
                    for session in device.sessions_for_day(day, self.network.rngs, factor):
                        join_at = midnight + session.start
                        leave_at = midnight + session.end
                        if join_at < self.engine.now:
                            continue
                        self.engine.schedule(join_at, self._join_action(runtime, device))
                        if session.end == DAY and self._continues_next_day(runtime, device, day):
                            # Midnight-crossing presence (resident
                            # evenings into morning tails): one
                            # uninterrupted connection, no midnight
                            # release/rebind churn.
                            continue
                        self.engine.schedule(leave_at, self._leave_action(runtime, device))

        return generate

    def _continues_next_day(self, runtime: _SubnetRuntime, device: Device, day: dt.date) -> bool:
        next_day = day + dt.timedelta(days=1)
        if self._last_day is None or next_day > self._last_day:
            return False
        factor = self.network.day_factor(next_day, runtime.subnet)
        sessions = device.sessions_for_day(next_day, self.network.rngs, factor)
        return bool(sessions) and sessions[0].start == 0

    # -- join / renew / leave ----------------------------------------------------

    def _client_for(self, device: Device) -> DhcpClient:
        client = self._clients.get(device.device_id)
        if client is None:
            client = DhcpClient(
                device.device_id,
                host_name=device.host_name(),
                sends_release=device.sends_release,
            )
            self._clients[device.device_id] = client
        return client

    def _join_action(self, runtime: _SubnetRuntime, device: Device):
        def join() -> None:
            client = self._client_for(device)
            if client.address is not None:
                return  # overlapping sessions: already online
            address = client.join(runtime.server, self.engine.now)
            if address is None:
                return  # pool exhausted; device never shows up
            self._online[address] = device
            self.joins += 1
            self._schedule_renewal(runtime, device, client)

        return join

    def _schedule_renewal(self, runtime: _SubnetRuntime, device: Device, client: DhcpClient) -> None:
        interval = runtime.server.lease_time // 2
        generation = self._renew_generation.get(device.device_id, 0) + 1
        self._renew_generation[device.device_id] = generation

        def renew() -> None:
            if self._renew_generation.get(device.device_id) != generation:
                return  # a newer session owns the renewal loop
            if client.address is None or self._online.get(client.address) is not device:
                return  # left the network; stop renewing
            if client.renew(runtime.server, self.engine.now):
                self.engine.schedule(self.engine.now + interval, renew)

        self.engine.schedule(self.engine.now + interval, renew)

    def _leave_action(self, runtime: _SubnetRuntime, device: Device):
        def leave() -> None:
            client = self._clients.get(device.device_id)
            if client is None or client.address is None:
                return
            address = client.address
            client.leave(runtime.server, self.engine.now)
            if self._online.get(address) is device:
                del self._online[address]
            self.leaves += 1

        return leave

    # -- observability -------------------------------------------------------------

    def online_addresses(self) -> List[ipaddress.IPv4Address]:
        return list(self._online)

    def is_online(self, address) -> bool:
        return ipaddress.ip_address(address) in self._online

    def device_at(self, address) -> Optional[Device]:
        return self._online.get(ipaddress.ip_address(address))

    def echo_outcome(self, address, at: Optional[int] = None, attempt: int = 0) -> int:
        """What one echo request to ``address`` sees right now.

        Returns :data:`ECHO_REPLY`, :data:`ECHO_SILENT` or — only under
        a fault plan — :data:`ECHO_LOST` (the host is up but this
        particular packet was dropped).  Loss draws are keyed on
        (network, address, time, attempt), so retries at the same
        instant see independent, reproducible outcomes.
        """
        if isinstance(address, ipaddress.IPv4Address):
            ip = address  # hot path: the sweeper probes millions of times
        else:
            ip = ipaddress.ip_address(address)
        if ip in self.network.icmp_allowlist:
            responds = True
        elif self.network.icmp_policy is IcmpPolicy.BLOCK:
            return ECHO_SILENT
        else:
            device = self._online.get(ip)
            responds = device is not None and device.icmp_responds
        if not responds:
            return ECHO_SILENT
        if self.fault_plan is not None:
            when = self.engine.now if at is None else at
            if self.fault_plan.echo_lost(self.network.name, int(ip), when, attempt):
                return ECHO_LOST
        return ECHO_REPLY

    def is_icmp_responsive(self, address, at: Optional[int] = None, attempt: int = 0) -> bool:
        """Would an echo request to ``address`` be answered right now?"""
        return self.echo_outcome(address, at, attempt) == ECHO_REPLY

    def echo_batch(self, addresses) -> List[ipaddress.IPv4Address]:
        """The subset of ``addresses`` (in ascending order) that would
        echo now.  Callers pass sweep segments — dense ascending address
        runs — for which ascending order and input order coincide.

        Only valid when no fault plan is attached: without loss draws an
        echo outcome is a pure function of presence, so a whole sweep
        segment reduces to dict probes with the allowlist and policy
        hoisted out of the loop.  Fault-injected runs must go through
        :meth:`echo_outcome` per address to spend their keyed draws.
        """
        if self.fault_plan is not None:
            raise ValueError("echo_batch requires fault-free runtimes")
        allowlist = self.network.icmp_allowlist
        if self.network.icmp_policy is IcmpPolicy.BLOCK:
            if not allowlist:
                return []
            return [ip for ip in addresses if ip in allowlist]
        online = self._online
        if addresses and int(addresses[-1]) - int(addresses[0]) == len(addresses) - 1:
            # Dense ascending range (every sweep segment is one): invert
            # the scan and walk the online table instead of the address
            # space.  Occupancy is a few percent of a /24 sweep, so this
            # is O(online + allowlist) rather than O(addresses).  Sorting
            # restores ascending order — exactly the order the input
            # (and the per-address loop) produces.
            lo = int(addresses[0])
            hi = int(addresses[-1])
            hits = {
                ip
                for ip, device in online.items()
                if device.icmp_responds and lo <= int(ip) <= hi
            }
            if allowlist:
                hits.update(ip for ip in allowlist if lo <= int(ip) <= hi)
            return sorted(hits)
        if allowlist:
            return [
                ip
                for ip in addresses
                if ip in allowlist
                or ((device := online.get(ip)) is not None and device.icmp_responds)
            ]
        responders: List[ipaddress.IPv4Address] = []
        append = responders.append
        get = online.get
        for ip in addresses:
            device = get(ip)
            if device is not None and device.icmp_responds:
                append(ip)
        return responders


def build_runtimes(
    networks: List[Network],
    engine: SimulationEngine,
    *,
    sweep_interval: int = DEFAULT_SWEEP_INTERVAL,
    fault_plan=None,
) -> Dict[str, NetworkRuntime]:
    """One runtime per network, keyed by network name."""
    return {
        network.name: NetworkRuntime(
            network, engine, sweep_interval=sweep_interval, fault_plan=fault_plan
        )
        for network in networks
    }
