"""Calendars: holidays and COVID-19 phases.

The paper's case studies hinge on calendar structure: the Thanksgiving
weekend and Cyber Monday (Section 7.1, 2021-11-25), fall and Christmas
breaks, Carnaval (the February dip in Figure 10), and the COVID-19
lockdown phases that reshaped network occupancy (Figures 9 and 10,
with the March 2020 crossover).
"""

from __future__ import annotations

import datetime as dt
import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


def thanksgiving(year: int) -> dt.date:
    """US Thanksgiving: the fourth Thursday of November.

    >>> thanksgiving(2021)
    datetime.date(2021, 11, 25)
    """
    november_first = dt.date(year, 11, 1)
    # weekday(): Monday=0 ... Thursday=3.
    first_thursday = november_first + dt.timedelta(days=(3 - november_first.weekday()) % 7)
    return first_thursday + dt.timedelta(days=21)


def black_friday(year: int) -> dt.date:
    """The Friday after Thanksgiving."""
    return thanksgiving(year) + dt.timedelta(days=1)


def cyber_monday(year: int) -> dt.date:
    """The Monday after Thanksgiving."""
    return thanksgiving(year) + dt.timedelta(days=4)


def carnaval_monday(year: int) -> dt.date:
    """Rosemonday (Carnaval), 48 days before Easter Sunday.

    The "local Catholic holiday" behind the late-February 2020 dip in
    the paper's Figure 10.
    """
    easter = _easter(year)
    return easter - dt.timedelta(days=48)


def _easter(year: int) -> dt.date:
    """Anonymous Gregorian algorithm for Easter Sunday."""
    a = year % 19
    b, c = divmod(year, 100)
    d, e = divmod(b, 4)
    f = (b + 8) // 25
    g = (b - f + 1) // 3
    h = (19 * a + b - d - g + 15) % 30
    i, k = divmod(c, 4)
    l = (32 + 2 * e + 2 * i - h - k) % 7
    m = (a + 11 * h + 22 * l) // 451
    month, day = divmod(h + l - 7 * m + 114, 31)
    return dt.date(year, month, day + 1)


class HolidayCalendar:
    """Institution-style holiday periods that suppress on-site presence.

    ``occupancy_factor(date)`` returns a multiplier in [0, 1] applied
    to the network's normal occupancy.  Defaults model a US/EU academic
    or office calendar: Christmas break, a fall break week,
    Thanksgiving weekend (US flavour) and Carnaval (NL flavour).
    """

    def __init__(
        self,
        *,
        observes_thanksgiving: bool = False,
        observes_carnaval: bool = False,
        fall_break: bool = True,
        christmas_break: bool = True,
        extra_closures: Sequence[Tuple[dt.date, dt.date, float]] = (),
    ):
        self.observes_thanksgiving = observes_thanksgiving
        self.observes_carnaval = observes_carnaval
        self.fall_break = fall_break
        self.christmas_break = christmas_break
        self.extra_closures = list(extra_closures)

    def __repr__(self) -> str:
        # Deterministic (no object ids): Internet.cache_token() folds
        # this into on-disk snapshot cache keys.
        closures = ",".join(
            f"{start.isoformat()}..{end.isoformat()}@{factor}"
            for start, end, factor in self.extra_closures
        )
        return (
            f"HolidayCalendar(thanksgiving={self.observes_thanksgiving}, "
            f"carnaval={self.observes_carnaval}, fall={self.fall_break}, "
            f"christmas={self.christmas_break}, extra=[{closures}])"
        )

    def occupancy_factor(self, day: dt.date) -> float:
        factor = 1.0
        if self.christmas_break and self._in_christmas_break(day):
            factor = min(factor, 0.35)
        if self.fall_break and self._in_fall_break(day):
            factor = min(factor, 0.55)
        if self.observes_thanksgiving and self._in_thanksgiving_weekend(day):
            factor = min(factor, 0.30)
        if self.observes_carnaval and self._in_carnaval_week(day):
            factor = min(factor, 0.60)
        for start, end, closure_factor in self.extra_closures:
            if start <= day <= end:
                factor = min(factor, closure_factor)
        return factor

    def _in_christmas_break(self, day: dt.date) -> bool:
        return (day.month == 12 and day.day >= 21) or (day.month == 1 and day.day <= 3)

    def _in_fall_break(self, day: dt.date) -> bool:
        # The last full week of October, as in the paper's Figure 10.
        return day.month == 10 and 24 <= day.day <= 31

    def _in_thanksgiving_weekend(self, day: dt.date) -> bool:
        start = thanksgiving(day.year)
        return start <= day <= start + dt.timedelta(days=3)

    def _in_carnaval_week(self, day: dt.date) -> bool:
        monday = carnaval_monday(day.year)
        return monday - dt.timedelta(days=2) <= day <= monday + dt.timedelta(days=2)


class CovidPhase(enum.Enum):
    """Campus-reported risk levels (the paper compares Academic-A's
    public COVID-19 news reports against rDNS entry counts)."""

    NORMAL = "normal"
    LOW_RISK = "low"
    MODERATE_RISK = "moderate"
    HIGH_RISK = "high"
    LOCKDOWN = "lockdown"


#: On-site presence multiplier per phase, for office/education space.
PHASE_ONSITE_FACTOR: Dict[CovidPhase, float] = {
    CovidPhase.NORMAL: 1.0,
    CovidPhase.LOW_RISK: 0.90,
    CovidPhase.MODERATE_RISK: 0.60,
    CovidPhase.HIGH_RISK: 0.40,
    CovidPhase.LOCKDOWN: 0.25,
}

#: Residential (on-campus housing) multiplier per phase: when education
#: buildings empty, students study from their campus residences, which
#: produces the March-2020 crossover of Figure 10.
PHASE_HOUSING_FACTOR: Dict[CovidPhase, float] = {
    CovidPhase.NORMAL: 1.0,
    CovidPhase.LOW_RISK: 1.0,
    CovidPhase.MODERATE_RISK: 1.05,
    CovidPhase.HIGH_RISK: 1.10,
    CovidPhase.LOCKDOWN: 1.15,
}


@dataclass(frozen=True)
class _PhaseSpan:
    start: dt.date
    phase: CovidPhase


class CovidTimeline:
    """A piecewise-constant phase timeline for one institution."""

    def __init__(self, spans: Sequence[Tuple[dt.date, CovidPhase]]):
        ordered = sorted(spans, key=lambda pair: pair[0])
        self._spans = [_PhaseSpan(start, phase) for start, phase in ordered]

    def __repr__(self) -> str:
        # Deterministic (no object ids): Internet.cache_token() folds
        # this into on-disk snapshot cache keys.
        spans = ",".join(
            f"{span.start.isoformat()}:{span.phase.name}" for span in self._spans
        )
        return f"CovidTimeline([{spans}])"

    def phase_on(self, day: dt.date) -> CovidPhase:
        current = CovidPhase.NORMAL
        for span in self._spans:
            if span.start <= day:
                current = span.phase
            else:
                break
        return current

    def onsite_factor(self, day: dt.date) -> float:
        return PHASE_ONSITE_FACTOR[self.phase_on(day)]

    def housing_factor(self, day: dt.date) -> float:
        return PHASE_HOUSING_FACTOR[self.phase_on(day)]

    @classmethod
    def none(cls) -> "CovidTimeline":
        """A timeline that stays NORMAL forever."""
        return cls([])

    @classmethod
    def typical_university(cls) -> "CovidTimeline":
        """Lockdown March 2020, cautious reopenings, normal by fall 2021.

        Mirrors the paper's Academic-B: "a marked reduction ... during
        the first period of COVID-19 lockdowns, after which the number
        goes back up to about 95% ... By September 2021, the level
        returns to that of before the pandemic."
        """
        return cls(
            [
                (dt.date(2020, 3, 16), CovidPhase.LOCKDOWN),
                (dt.date(2020, 7, 1), CovidPhase.HIGH_RISK),
                (dt.date(2020, 9, 1), CovidPhase.MODERATE_RISK),
                (dt.date(2020, 12, 15), CovidPhase.HIGH_RISK),
                (dt.date(2021, 2, 15), CovidPhase.MODERATE_RISK),
                (dt.date(2021, 6, 1), CovidPhase.LOW_RISK),
                (dt.date(2021, 9, 1), CovidPhase.NORMAL),
            ]
        )

    @classmethod
    def risk_reporting_campus(cls) -> "CovidTimeline":
        """A campus that oscillates with reported risk levels.

        Mirrors Academic-A: "for the times at which a moderate or high
        risk was reported ... sharp decreases in daily rDNS entries
        are visible", with rebounds after low-risk reports.
        """
        return cls(
            [
                (dt.date(2020, 3, 16), CovidPhase.LOCKDOWN),
                (dt.date(2020, 8, 15), CovidPhase.MODERATE_RISK),
                (dt.date(2020, 10, 1), CovidPhase.HIGH_RISK),
                (dt.date(2020, 11, 15), CovidPhase.MODERATE_RISK),
                (dt.date(2021, 1, 10), CovidPhase.HIGH_RISK),
                (dt.date(2021, 3, 1), CovidPhase.MODERATE_RISK),
                (dt.date(2021, 5, 1), CovidPhase.LOW_RISK),
                (dt.date(2021, 8, 20), CovidPhase.NORMAL),
            ]
        )

    @classmethod
    def late_lockdown_enterprise(cls) -> "CovidTimeline":
        """An enterprise hit by measures in March/April 2021.

        Mirrors Enterprise-B/C: "significant decreases in rDNS entries
        in March and April of 2021" with partial recovery around May.
        """
        return cls(
            [
                (dt.date(2020, 3, 16), CovidPhase.MODERATE_RISK),
                (dt.date(2020, 9, 1), CovidPhase.LOW_RISK),
                (dt.date(2021, 3, 1), CovidPhase.LOCKDOWN),
                (dt.date(2021, 5, 10), CovidPhase.HIGH_RISK),
                (dt.date(2021, 8, 1), CovidPhase.MODERATE_RISK),
            ]
        )
