"""A minimal discrete-event simulation engine.

Events are ``[time, sequence, callback]`` triples; ties break in
scheduling order, which keeps runs deterministic.  Components (DHCP
clients, scanners, sweeps) schedule callbacks; the engine drives the
:class:`~repro.netsim.simtime.SimClock`.

:class:`SimulationEngine` stores events in a *calendar queue*: a dict
of time buckets (each a small binary heap) plus a heap of live bucket
indexes.  The simulation's workloads are dominated by periodic timers —
lease renewals every half lease-time, expiry sweeps every few minutes,
hourly measurement sweeps — so tens of thousands of events are pending
at once but each is near its neighbours in time.  Bucketing keeps every
``heappush``/``heappop`` on a list of a few dozen entries instead of
the whole queue, which is what made the single global heap the
scheduler's cost centre on six-week campaigns.

:class:`ReferenceEngine` retains the original single-heap scheduler as
an oracle: property tests pin the calendar queue to it bit-for-bit
(same callback order, same clock trace), the way
``DictReferenceAnalyzer`` pins the columnar analyzers.

Heap entries are plain lists rather than dataclass instances: a
six-week supplemental campaign pushes and pops millions of events, and
rich-comparison dispatch on an ``order=True`` dataclass dominated
``heappush``/``heappop`` in profiles.  Lists compare element-wise in C
(the unique sequence number guarantees the callback slot is never
reached), and the mutable third slot doubles as the cancellation flag.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional

from repro.netsim.simtime import SimClock

Callback = Callable[[], None]

_CANCELLED = object()
_EXECUTED = object()

#: Heap-entry slots (an entry is ``[at, seq, callback]``).
_AT, _SEQ, _CALLBACK = 0, 1, 2

#: Default calendar-queue bucket span in simulation seconds.  The
#: dominant periodic workloads tick every 300-3600 seconds, so 1024 s
#: buckets hold one sweep generation's worth of events each — big
#: enough that bucket turnover is rare, small enough that the
#: per-bucket heaps stay shallow.
DEFAULT_BUCKET_WIDTH = 1024


class EventHandle:
    """Returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "SimulationEngine"):
        self._entry = entry
        self._engine = engine

    def cancel(self) -> None:
        """Drop the event; a no-op if it already ran or was cancelled."""
        if self._entry[_CALLBACK] is _CANCELLED or self._entry[_CALLBACK] is _EXECUTED:
            return
        self._entry[_CALLBACK] = _CANCELLED
        self._engine._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is _CANCELLED

    @property
    def at(self) -> int:
        return self._entry[_AT]


class RecurringHandle:
    """Returned by :meth:`SimulationEngine.schedule_every`.

    Wraps whichever :class:`EventHandle` currently carries the stream's
    next tick; ``cancel()`` stops the stream for good, whether called
    between ticks or from inside the recurring callback itself.
    """

    __slots__ = ("_handle", "_stopped")

    def __init__(self) -> None:
        self._handle: Optional[EventHandle] = None
        self._stopped = False

    def cancel(self) -> None:
        """Stop the stream; pending and future ticks are dropped."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._stopped

    @property
    def next_at(self) -> Optional[int]:
        """When the next tick fires, or None once the stream is done."""
        if self._stopped or self._handle is None:
            return None
        return self._handle.at


class SimulationEngine:
    """The event loop, over a calendar queue of time buckets."""

    def __init__(self, start: int = 0, *, bucket_width: int = DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.clock = SimClock(start)
        self.bucket_width = bucket_width
        #: Live buckets: index -> heap of ``[at, seq, callback]``.  An
        #: index is in ``_bucket_heap`` iff its bucket is in the dict;
        #: buckets are removed only when drained, so the index heap
        #: never holds duplicates or stale entries.
        self._buckets: Dict[int, List[list]] = {}
        self._bucket_heap: List[int] = []
        self._seq = itertools.count()
        self._live = 0
        self.events_run = 0
        #: Highest number of live events ever queued at once — the
        #: engine's memory high-water mark.  Maintained with one
        #: comparison per ``schedule`` call, so the hot path stays
        #: instrumentation-free.
        self.queue_high_water = 0

    @property
    def now(self) -> int:
        return self.clock.now

    def schedule(self, at: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute time ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
        entry = [at, next(self._seq), callback]
        index = at // self.bucket_width
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heapq.heappush(self._bucket_heap, index)
        else:
            heapq.heappush(bucket, entry)
        self._live += 1
        if self._live > self.queue_high_water:
            self.queue_high_water = self._live
        return EventHandle(entry, self)

    def schedule_in(self, delay: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback)

    def schedule_every(
        self, interval: int, callback: Callback, *, until: Optional[int] = None
    ) -> RecurringHandle:
        """Run ``callback`` periodically, starting one interval from now.

        Returns a :class:`RecurringHandle`; cancelling it mid-stream
        stops all future ticks (including a tick already scheduled).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = RecurringHandle()

        def tick() -> None:
            callback()
            if handle._stopped:
                return  # cancelled from inside the callback
            next_at = self.now + interval
            if until is None or next_at <= until:
                handle._handle = self.schedule(next_at, tick)
            else:
                handle._handle = None

        first = self.now + interval
        if until is None or first <= until:
            handle._handle = self.schedule(first, tick)
        return handle

    def _pop_due(self, end: Optional[int]) -> Optional[Callback]:
        """The next runnable callback with ``at <= end``, clock advanced.

        All events in the minimum live bucket precede every event in any
        later bucket, so the scan only ever touches the front bucket.
        """
        bucket_heap = self._bucket_heap
        buckets = self._buckets
        while bucket_heap:
            index = bucket_heap[0]
            bucket = buckets[index]
            while bucket:
                if end is not None and bucket[0][_AT] > end:
                    return None
                entry = heapq.heappop(bucket)
                callback = entry[_CALLBACK]
                if callback is _CANCELLED:
                    continue
                entry[_CALLBACK] = _EXECUTED
                self._live -= 1
                self.clock.advance_to(entry[_AT])
                return callback
            # Bucket drained: retire it and move to the next index.
            heapq.heappop(bucket_heap)
            del buckets[index]
        return None

    def run_until(self, end: int) -> int:
        """Run all events with ``at <= end``; returns events executed.

        The clock lands on ``end`` afterwards even if the queue empties
        earlier.
        """
        executed = 0
        while True:
            callback = self._pop_due(end)
            if callback is None:
                break
            callback()
            executed += 1
            self.events_run += 1
        self.clock.advance_to(max(self.now, end))
        return executed

    def run(self) -> int:
        """Run until the queue is exhausted; returns events executed."""
        executed = 0
        while True:
            callback = self._pop_due(None)
            if callback is None:
                break
            callback()
            executed += 1
            self.events_run += 1
        return executed

    @property
    def pending(self) -> int:
        """Live (scheduled, uncancelled, unexecuted) events — O(1).

        Maintained as a counter on schedule/cancel/pop; the old
        implementation scanned the whole heap per call, which analysis
        loops polling it turned into accidental O(n²).
        """
        return self._live

    def export_metrics(self, registry) -> None:
        """Publish event totals into a :class:`repro.obs.MetricsRegistry`.

        Called at run boundaries (not per event), so the event loop
        itself carries no instrumentation cost.
        """
        registry.counter("engine_events_total").inc(self.events_run)
        registry.gauge("engine_queue_high_water").set_max(self.queue_high_water)


class ReferenceEngine(SimulationEngine):
    """The original single binary-heap scheduler, retained as an oracle.

    Semantically identical to :class:`SimulationEngine` — same
    ``(at, seq)`` total order, same tie-breaking, same cancellation
    sentinels — but with every event in one global heap.  Property
    tests run randomized schedules through both engines and assert the
    callback order and clock traces match exactly; it also serves as
    the baseline side of the world-generation benchmark.
    """

    def __init__(self, start: int = 0):
        super().__init__(start)
        self._queue: List[list] = []

    def schedule(self, at: int, callback: Callback) -> EventHandle:
        if at < self.now:
            raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
        entry = [at, next(self._seq), callback]
        heapq.heappush(self._queue, entry)
        self._live += 1
        if self._live > self.queue_high_water:
            self.queue_high_water = self._live
        return EventHandle(entry, self)

    def _pop_due(self, end: Optional[int]) -> Optional[Callback]:
        queue = self._queue
        while queue and (end is None or queue[0][_AT] <= end):
            entry = heapq.heappop(queue)
            callback = entry[_CALLBACK]
            if callback is _CANCELLED:
                continue
            entry[_CALLBACK] = _EXECUTED
            self._live -= 1
            self.clock.advance_to(entry[_AT])
            return callback
        return None
