"""A minimal discrete-event simulation engine.

Events are (time, sequence, callback) triples in a binary heap; ties
break in scheduling order, which keeps runs deterministic.  Components
(DHCP clients, scanners, sweeps) schedule callbacks; the engine drives
the :class:`~repro.netsim.simtime.SimClock`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.netsim.simtime import SimClock

Callback = Callable[[], None]

_CANCELLED = object()


@dataclass(order=True)
class _Event:
    at: int
    seq: int
    callback: object = field(compare=False)


class EventHandle:
    """Returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.callback = _CANCELLED

    @property
    def cancelled(self) -> bool:
        return self._event.callback is _CANCELLED

    @property
    def at(self) -> int:
        return self._event.at


class SimulationEngine:
    """The event loop."""

    def __init__(self, start: int = 0):
        self.clock = SimClock(start)
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> int:
        return self.clock.now

    def schedule(self, at: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute time ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
        event = _Event(at, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(self, delay: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback)

    def schedule_every(self, interval: int, callback: Callback, *, until: Optional[int] = None) -> None:
        """Run ``callback`` periodically, starting one interval from now."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            next_at = self.now + interval
            if until is None or next_at <= until:
                self.schedule(next_at, tick)

        first = self.now + interval
        if until is None or first <= until:
            self.schedule(first, tick)

    def run_until(self, end: int) -> int:
        """Run all events with ``at <= end``; returns events executed.

        The clock lands on ``end`` afterwards even if the queue empties
        earlier.
        """
        executed = 0
        while self._queue and self._queue[0].at <= end:
            event = heapq.heappop(self._queue)
            if event.callback is _CANCELLED:
                continue
            self.clock.advance_to(event.at)
            event.callback()  # type: ignore[operator]
            executed += 1
            self.events_run += 1
        self.clock.advance_to(max(self.now, end))
        return executed

    def run(self) -> int:
        """Run until the queue is exhausted; returns events executed."""
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.callback is _CANCELLED:
                continue
            self.clock.advance_to(event.at)
            event.callback()  # type: ignore[operator]
            executed += 1
            self.events_run += 1
        return executed

    @property
    def pending(self) -> int:
        return sum(1 for event in self._queue if event.callback is not _CANCELLED)
