"""A minimal discrete-event simulation engine.

Events are ``[time, sequence, callback]`` triples in a binary heap;
ties break in scheduling order, which keeps runs deterministic.
Components (DHCP clients, scanners, sweeps) schedule callbacks; the
engine drives the :class:`~repro.netsim.simtime.SimClock`.

Heap entries are plain lists rather than dataclass instances: a
six-week supplemental campaign pushes and pops millions of events, and
rich-comparison dispatch on an ``order=True`` dataclass dominated
``heappush``/``heappop`` in profiles.  Lists compare element-wise in C
(the unique sequence number guarantees the callback slot is never
reached), and the mutable third slot doubles as the cancellation flag.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.netsim.simtime import SimClock

Callback = Callable[[], None]

_CANCELLED = object()
_EXECUTED = object()

#: Heap-entry slots (an entry is ``[at, seq, callback]``).
_AT, _SEQ, _CALLBACK = 0, 1, 2


class EventHandle:
    """Returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "SimulationEngine"):
        self._entry = entry
        self._engine = engine

    def cancel(self) -> None:
        """Drop the event; a no-op if it already ran or was cancelled."""
        if self._entry[_CALLBACK] is _CANCELLED or self._entry[_CALLBACK] is _EXECUTED:
            return
        self._entry[_CALLBACK] = _CANCELLED
        self._engine._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is _CANCELLED

    @property
    def at(self) -> int:
        return self._entry[_AT]


class SimulationEngine:
    """The event loop."""

    def __init__(self, start: int = 0):
        self.clock = SimClock(start)
        self._queue: List[list] = []
        self._seq = itertools.count()
        self._live = 0
        self.events_run = 0
        #: Highest number of live events ever queued at once — the
        #: engine's memory high-water mark.  Maintained with one
        #: comparison per ``schedule`` call, so the hot path stays
        #: instrumentation-free.
        self.queue_high_water = 0

    @property
    def now(self) -> int:
        return self.clock.now

    def schedule(self, at: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute time ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
        entry = [at, next(self._seq), callback]
        heapq.heappush(self._queue, entry)
        self._live += 1
        if self._live > self.queue_high_water:
            self.queue_high_water = self._live
        return EventHandle(entry, self)

    def schedule_in(self, delay: int, callback: Callback) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback)

    def schedule_every(self, interval: int, callback: Callback, *, until: Optional[int] = None) -> None:
        """Run ``callback`` periodically, starting one interval from now."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            next_at = self.now + interval
            if until is None or next_at <= until:
                self.schedule(next_at, tick)

        first = self.now + interval
        if until is None or first <= until:
            self.schedule(first, tick)

    def _pop_due(self, end: Optional[int]) -> Optional[Callback]:
        """The next runnable callback with ``at <= end``, clock advanced."""
        queue = self._queue
        while queue and (end is None or queue[0][_AT] <= end):
            entry = heapq.heappop(queue)
            callback = entry[_CALLBACK]
            if callback is _CANCELLED:
                continue
            entry[_CALLBACK] = _EXECUTED
            self._live -= 1
            self.clock.advance_to(entry[_AT])
            return callback
        return None

    def run_until(self, end: int) -> int:
        """Run all events with ``at <= end``; returns events executed.

        The clock lands on ``end`` afterwards even if the queue empties
        earlier.
        """
        executed = 0
        while True:
            callback = self._pop_due(end)
            if callback is None:
                break
            callback()
            executed += 1
            self.events_run += 1
        self.clock.advance_to(max(self.now, end))
        return executed

    def run(self) -> int:
        """Run until the queue is exhausted; returns events executed."""
        executed = 0
        while True:
            callback = self._pop_due(None)
            if callback is None:
                break
            callback()
            executed += 1
            self.events_run += 1
        return executed

    @property
    def pending(self) -> int:
        """Live (scheduled, uncancelled, unexecuted) events — O(1).

        Maintained as a counter on schedule/cancel/pop; the old
        implementation scanned the whole heap per call, which analysis
        loops polling it turned into accidental O(n²).
        """
        return self._live

    def export_metrics(self, registry) -> None:
        """Publish event totals into a :class:`repro.obs.MetricsRegistry`.

        Called at run boundaries (not per event), so the event loop
        itself carries no instrumentation cost.
        """
        registry.counter("engine_events_total").inc(self.events_run)
        registry.gauge("engine_queue_high_water").set_max(self.queue_high_water)
