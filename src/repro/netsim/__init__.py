"""Discrete-event simulation of networks, people and devices.

This package is the substitute for the live Internet the paper
measures: populations of people with named devices join and leave
networks on realistic schedules (diurnal cycles, weekends, holidays,
COVID-19 phases), driving DHCP leases that an IPAM bridge mirrors into
reverse DNS.  Everything is seeded and deterministic.
"""

from repro.netsim.engine import SimulationEngine
from repro.netsim.simtime import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    SimClock,
    from_datetime,
    to_datetime,
    ts,
)
from repro.netsim.rng import RngStreams
from repro.netsim.calendar import (
    CovidPhase,
    CovidTimeline,
    HolidayCalendar,
    black_friday,
    cyber_monday,
    thanksgiving,
)
from repro.netsim.device import Device, DeviceModel, DeviceNaming, MODEL_CATALOG
from repro.netsim.person import Person, PersonGenerator
from repro.netsim.behavior import PresenceProfile, ProfileKind, Session
from repro.netsim.network import (
    IcmpPolicy,
    Network,
    NetworkType,
    Subnet,
    SubnetRole,
)
from repro.netsim.internet import Internet
from repro.netsim.faults import (
    FAULT_PROFILES,
    FaultPlan,
    NetworkFaultProfile,
    OutageWindow,
    plan_from_profile,
    resolve_fault_plan,
)
from repro.netsim.spec import build_world_from_file, build_world_from_spec, validate_spec
from repro.netsim.worldplan import (
    LazyPlanInternet,
    PlanError,
    WorldPlan,
    synthetic_plan,
)

__all__ = [
    "CovidPhase",
    "CovidTimeline",
    "DAY",
    "Device",
    "DeviceModel",
    "DeviceNaming",
    "FAULT_PROFILES",
    "FaultPlan",
    "HOUR",
    "HolidayCalendar",
    "IcmpPolicy",
    "Internet",
    "LazyPlanInternet",
    "MINUTE",
    "MODEL_CATALOG",
    "Network",
    "NetworkFaultProfile",
    "NetworkType",
    "OutageWindow",
    "Person",
    "PlanError",
    "PersonGenerator",
    "PresenceProfile",
    "ProfileKind",
    "RngStreams",
    "Session",
    "SimClock",
    "SimulationEngine",
    "Subnet",
    "SubnetRole",
    "WEEK",
    "WorldPlan",
    "black_friday",
    "build_world_from_file",
    "build_world_from_spec",
    "cyber_monday",
    "from_datetime",
    "plan_from_profile",
    "resolve_fault_plan",
    "synthetic_plan",
    "thanksgiving",
    "to_datetime",
    "ts",
    "validate_spec",
]
