"""Population builders: whole networks of people, devices and records.

These factories assemble :class:`~repro.netsim.network.Network` objects
of the types the paper identifies (academic, ISP, enterprise,
government, other), including the static content — server farms,
router-level infrastructure names with city words, vanity hosts — that
the Section 5.1 filtering steps must see through.
"""

from __future__ import annotations

import ipaddress
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.datasets.terms import CITY_NAMES_WITH_GIVEN_NAME_OVERLAP, PLAIN_CITY_NAMES
from repro.ipam.policy import CarryOverPolicy, DnsUpdatePolicy, StaticTemplatePolicy
from repro.netsim.behavior import ProfileKind
from repro.netsim.calendar import CovidTimeline, HolidayCalendar
from repro.netsim.device import Device
from repro.netsim.network import (
    IcmpPolicy,
    Network,
    NetworkType,
    RdnsMode,
    Subnet,
    SubnetRole,
)
from repro.netsim.person import Person, PersonGenerator
from repro.netsim.rng import RngStreams

StaticEntry = Tuple[ipaddress.IPv4Address, str]

_SERVER_LABELS = [
    "www", "mail", "smtp", "imap", "ns1", "ns2", "vpn", "proxy",
    "lb1", "lb2", "db1", "db2", "backup", "monitor", "git", "wiki",
]

_ROUTER_INTERFACES = ["xe-0-0-0", "xe-1-0-1", "ge-0-1-0", "ae1", "ae2", "te-2-0-0", "eth0"]
_ROUTER_ROLES = ["core1", "core2", "edge1", "edge2", "border1", "gw1", "gw2"]
_ROUTER_LOCATIONS = (
    ["north", "south", "east", "west"]
    + PLAIN_CITY_NAMES
    + CITY_NAMES_WITH_GIVEN_NAME_OVERLAP
)


def make_server_entries(prefix: str, suffix: str, *, count: Optional[int] = None) -> List[StaticEntry]:
    """Fixed records for a server subnet (www, mail, ns1, srvNN...)."""
    network = ipaddress.IPv4Network(prefix)
    addresses = list(network)[1:-1]
    labels = list(_SERVER_LABELS)
    total = count if count is not None else min(len(addresses), len(labels) + 16)
    while len(labels) < total:
        labels.append(f"srv{len(labels):02d}")
    return [
        (addresses[index], f"{labels[index]}.{suffix}")
        for index in range(min(total, len(addresses)))
    ]


def make_infrastructure_entries(
    prefix: str, suffix: str, rng: random.Random, *, count: int = 24
) -> List[StaticEntry]:
    """Router-level records in the style the literature decodes.

    These deliberately contain location words — including city names
    like ``jackson`` that collide with given names — so that the
    analysis' generic-term exclusion and suffix thresholds (Section
    5.1, "Dealing with City Names") have realistic confounders.
    """
    network = ipaddress.IPv4Network(prefix)
    addresses = list(network)[1:-1]
    entries: List[StaticEntry] = []
    for index in range(min(count, len(addresses))):
        interface = rng.choice(_ROUTER_INTERFACES)
        role = rng.choice(_ROUTER_ROLES)
        location = rng.choice(_ROUTER_LOCATIONS)
        entries.append((addresses[index], f"{interface}.{role}.{location}.{suffix}"))
    return entries


def make_vanity_entries(
    prefix: str, suffix: str, rng: random.Random, *, count: int = 8
) -> List[StaticEntry]:
    """Static hosts named after people (vanity boxes, legacy hosting).

    Such records carry given names but sit in *static* space, so they
    appear among Figure 2's "all matches" and must be excluded from
    the filtered set by the dynamicity requirement.  Names follow the
    SSA popularity weighting, as real name usage does.
    """
    from repro.datasets.names import name_popularity_weights

    network = ipaddress.IPv4Network(prefix)
    addresses = list(network)[1:-1]
    weights = name_popularity_weights()
    names = list(weights)
    name_weights = [weights[name] for name in names]
    entries: List[StaticEntry] = []
    for index in range(min(count, len(addresses))):
        name = rng.choices(names, weights=name_weights, k=1)[0]
        style = rng.choice(
            [
                "{name}", "{name}-pc", "{name}-ws", "{name}-desk", "{name}{n}",
                # Static boxes named after owner and device class: these
                # put device terms into Figure 3's "all matches" series
                # without being dynamic.
                "{name}-laptop", "{name}-desktop", "{name}-macbook",
            ]
        )
        label = style.format(name=name, n=rng.randrange(1, 99))
        entries.append((addresses[index], f"{label}.{suffix}"))
    return entries


def _take_devices(people: Iterable[Person]) -> List[Device]:
    return [device for person in people for device in person.devices]


class NetworkBuilder:
    """Assembles the standard network archetypes.

    One builder per simulated world; it owns the RNG streams and hands
    each network a distinct sub-stream so worlds are reproducible.
    """

    def __init__(self, rngs: RngStreams):
        self.rngs = rngs

    def _generator(self, network_name: str, **kwargs) -> PersonGenerator:
        return PersonGenerator(self.rngs.stream("population", network_name), **kwargs)

    def academic(
        self,
        name: str,
        prefix: str,
        suffix: str,
        *,
        education_prefix: str,
        housing_prefix: Optional[str] = None,
        servers_prefix: Optional[str] = None,
        infrastructure_prefix: Optional[str] = None,
        staff: int = 40,
        students: int = 80,
        residents: int = 100,
        lease_time: int = 3600,
        icmp_policy: IcmpPolicy = IcmpPolicy.ALLOW,
        covid: Optional[CovidTimeline] = None,
        us_campus: bool = True,
        housing_response: str = "shelter",
        policy: Optional[DnsUpdatePolicy] = None,
        extra_education_devices: Sequence[Device] = (),
        extra_housing_devices: Sequence[Device] = (),
        rdns_mode: "str | RdnsMode" = RdnsMode.ENABLED,
        zone_layout: str = "flat",
    ) -> Network:
        """A campus: education buildings, optional housing, servers.

        ``rdns_mode`` applies to the dynamic (education/housing) subnets;
        static server/infrastructure records are always published.
        """
        rdns_mode = RdnsMode.parse(rdns_mode)
        generator = self._generator(name)
        policy = policy or CarryOverPolicy(suffix)
        holidays = HolidayCalendar(
            observes_thanksgiving=us_campus, observes_carnaval=not us_campus
        )
        network = Network(
            name,
            NetworkType.ACADEMIC,
            prefix,
            suffix,
            icmp_policy=icmp_policy,
            lease_time=lease_time,
            housing_response=housing_response,
            holidays=holidays,
            covid=covid or CovidTimeline.typical_university(),
            rngs=self.rngs,
            zone_layout=zone_layout,
        )
        education_people = generator.make_population(
            staff, id_prefix=f"{name}-staff", profile_kind=ProfileKind.OFFICE_WORKER
        ) + generator.make_population(
            students, id_prefix=f"{name}-stu", profile_kind=ProfileKind.STUDENT
        )
        education_devices = _take_devices(education_people) + list(extra_education_devices)
        network.add_subnet(
            Subnet(education_prefix, SubnetRole.EDUCATION, devices=education_devices, policy=policy, rdns_mode=rdns_mode)
        )
        if housing_prefix is not None:
            housing_people = generator.make_population(
                residents, id_prefix=f"{name}-res", profile_kind=ProfileKind.RESIDENT
            )
            housing_devices = _take_devices(housing_people) + list(extra_housing_devices)
            network.add_subnet(
                Subnet(housing_prefix, SubnetRole.HOUSING, devices=housing_devices, policy=policy, rdns_mode=rdns_mode)
            )
        if servers_prefix is not None:
            network.add_subnet(
                Subnet(
                    servers_prefix,
                    SubnetRole.STATIC_SERVERS,
                    static_entries=make_server_entries(servers_prefix, suffix),
                )
            )
        if infrastructure_prefix is not None:
            network.add_subnet(
                Subnet(
                    infrastructure_prefix,
                    SubnetRole.INFRASTRUCTURE,
                    static_entries=make_infrastructure_entries(
                        infrastructure_prefix, f"net.{suffix}", self.rngs.stream("infra", name)
                    ),
                )
            )
        return network

    def enterprise(
        self,
        name: str,
        prefix: str,
        suffix: str,
        *,
        office_prefix: str,
        servers_prefix: Optional[str] = None,
        employees: int = 60,
        lease_time: int = 3600,
        icmp_policy: IcmpPolicy = IcmpPolicy.ALLOW,
        covid: Optional[CovidTimeline] = None,
        policy: Optional[DnsUpdatePolicy] = None,
        net_type: NetworkType = NetworkType.ENTERPRISE,
        rdns_mode: "str | RdnsMode" = RdnsMode.ENABLED,
        zone_layout: str = "flat",
    ) -> Network:
        """An office network of 9-to-5 workers."""
        rdns_mode = RdnsMode.parse(rdns_mode)
        generator = self._generator(name)
        policy = policy or CarryOverPolicy(suffix)
        network = Network(
            name,
            net_type,
            prefix,
            suffix,
            icmp_policy=icmp_policy,
            lease_time=lease_time,
            holidays=HolidayCalendar(observes_thanksgiving=True, fall_break=False),
            covid=covid or CovidTimeline.late_lockdown_enterprise(),
            rngs=self.rngs,
            zone_layout=zone_layout,
        )
        people = generator.make_population(
            employees, id_prefix=f"{name}-emp", profile_kind=ProfileKind.OFFICE_WORKER
        )
        network.add_subnet(
            Subnet(office_prefix, SubnetRole.DYNAMIC_CLIENTS, devices=_take_devices(people), policy=policy, rdns_mode=rdns_mode)
        )
        if servers_prefix is not None:
            network.add_subnet(
                Subnet(
                    servers_prefix,
                    SubnetRole.STATIC_SERVERS,
                    static_entries=make_server_entries(servers_prefix, suffix),
                )
            )
        return network

    def government(self, name: str, prefix: str, suffix: str, **kwargs) -> Network:
        """Government office: an enterprise under a .gov suffix."""
        kwargs.setdefault("net_type", NetworkType.GOVERNMENT)
        return self.enterprise(name, prefix, suffix, **kwargs)

    def isp(
        self,
        name: str,
        prefix: str,
        suffix: str,
        *,
        access_prefix: str,
        infrastructure_prefix: Optional[str] = None,
        subscribers: int = 80,
        lease_time: int = 3600,
        icmp_response_rate: float = 0.35,
        carry_over_names: bool = True,
        policy: Optional[DnsUpdatePolicy] = None,
        covid: Optional[CovidTimeline] = None,
        rdns_mode: "str | RdnsMode" = RdnsMode.ENABLED,
        zone_layout: str = "flat",
    ) -> Network:
        """A residential access network.

        ``carry_over_names=False`` models the common ISP practice of
        fixed-form pool names (``client-1-2-3-4.dsl.example.net``) —
        dynamic DHCP, but no identity leak.  An explicit ``policy``
        overrides the flag entirely (the countermeasure-evaluation
        matrix swaps policies uniformly across network kinds).
        ``icmp_response_rate`` models CPE behaviour: the paper's ISP-B
        and ISP-C see under 2% responsiveness.
        """
        generator = self._generator(name, release_rate=0.6)
        rdns_mode = RdnsMode.parse(rdns_mode)
        if policy is None:
            if carry_over_names:
                policy = CarryOverPolicy(suffix)
            else:
                policy = StaticTemplatePolicy(suffix, template="client-{dashed}")
        network = Network(
            name,
            NetworkType.ISP,
            prefix,
            suffix,
            icmp_policy=IcmpPolicy.ALLOW,
            lease_time=lease_time,
            holidays=HolidayCalendar(fall_break=False, christmas_break=False),
            covid=covid or CovidTimeline.none(),
            rngs=self.rngs,
            zone_layout=zone_layout,
        )
        people = generator.make_population(
            subscribers, id_prefix=f"{name}-sub", profile_kind=ProfileKind.RESIDENT
        )
        devices = _take_devices(people)
        rng = self.rngs.stream("isp-icmp", name)
        for device in devices:
            device.icmp_responds = rng.random() < icmp_response_rate
        network.add_subnet(
            Subnet(access_prefix, SubnetRole.DYNAMIC_CLIENTS, devices=devices, policy=policy, rdns_mode=rdns_mode)
        )
        if infrastructure_prefix is not None:
            network.add_subnet(
                Subnet(
                    infrastructure_prefix,
                    SubnetRole.INFRASTRUCTURE,
                    static_entries=make_infrastructure_entries(
                        infrastructure_prefix, suffix, self.rngs.stream("infra", name), count=40
                    ),
                )
            )
        return network

    def background(
        self,
        name: str,
        prefix: str,
        suffix: str,
        *,
        static_24s: int = 4,
        dynamic_24s: int = 2,
        dynamic_mean: int = 60,
        vanity: bool = False,
        vanity_hosting_24s: int = 0,
        rdns_mode: "str | RdnsMode" = RdnsMode.ENABLED,
        zone_layout: str = "flat",
    ) -> Network:
        """Background space for Internet-scale realism (Figure 1).

        Static /24s carry infrastructure (and optionally vanity)
        records; dynamic /24s are count-backed with template names, so
        they register as dynamic without leaking identities.
        ``vanity_hosting_24s`` adds legacy static-hosting /24s densely
        populated with person-named records — the static name mass that
        separates Figure 2's "all matches" from its filtered series.
        """
        from repro.netsim.network import CountModel

        rdns_mode = RdnsMode.parse(rdns_mode)
        network = Network(
            name, NetworkType.OTHER, prefix, suffix, rngs=self.rngs,
            zone_layout=zone_layout,
        )
        slash24s = list(ipaddress.IPv4Network(prefix).subnets(new_prefix=24))
        rng = self.rngs.stream("background", name)
        needed = static_24s + dynamic_24s + vanity_hosting_24s
        if needed > len(slash24s):
            raise ValueError(f"{prefix} holds only {len(slash24s)} /24s, need {needed}")
        chosen = rng.sample(slash24s, needed)
        for index, subnet_prefix in enumerate(chosen[:static_24s]):
            if vanity and index == 0:
                entries = make_vanity_entries(str(subnet_prefix), suffix, rng)
            else:
                entries = make_infrastructure_entries(str(subnet_prefix), suffix, rng)
            network.add_subnet(
                Subnet(str(subnet_prefix), SubnetRole.INFRASTRUCTURE, static_entries=entries)
            )
        for subnet_prefix in chosen[static_24s + dynamic_24s:]:
            entries = make_vanity_entries(
                str(subnet_prefix), f"hosting.{suffix}", rng, count=180
            )
            network.add_subnet(
                Subnet(str(subnet_prefix), SubnetRole.STATIC_SERVERS, static_entries=entries)
            )
        for subnet_prefix in chosen[static_24s:static_24s + dynamic_24s]:
            mean = max(12, int(rng.gauss(dynamic_mean, dynamic_mean * 0.3)))
            network.add_subnet(
                Subnet(
                    str(subnet_prefix),
                    SubnetRole.DYNAMIC_CLIENTS,
                    count_model=CountModel(mean=min(mean, 220)),
                    count_suffix=f"dyn.{suffix}",
                    rdns_mode=rdns_mode,
                )
            )
        return network
