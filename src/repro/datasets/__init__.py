"""Embedded reference data.

* :mod:`repro.datasets.names` — the top-50 US given names (SSA
  2000-2020 popularity ranking) the paper matches against (Figure 2).
* :mod:`repro.datasets.terms` — the device-term lexicon of Figure 3 and
  the generic router-level terms excluded in Section 5.1.
"""

from repro.datasets.names import TOP_GIVEN_NAMES, name_popularity_weights
from repro.datasets.terms import (
    CITY_NAMES_WITH_GIVEN_NAME_OVERLAP,
    DEVICE_TERMS,
    GENERIC_ROUTER_TERMS,
)

__all__ = [
    "CITY_NAMES_WITH_GIVEN_NAME_OVERLAP",
    "DEVICE_TERMS",
    "GENERIC_ROUTER_TERMS",
    "TOP_GIVEN_NAMES",
    "name_popularity_weights",
]
