"""The top-50 US given names, 2000-2020, ranked by popularity.

The paper (Section 5.1) matches PTR records against "names given to
newborns" published by the US Social Security Administration, selecting
"names for the years 2000 up to 2020, ranked by popularity over this
20-year period" and keeping the top 50.  The list below is that
ranking; it is also the x-axis of the paper's Figure 2 (Jacob, Michael,
Emma, William, ...).
"""

from __future__ import annotations

from typing import Dict, List

#: Top-50 given names in paper/Figure-2 order (most popular first).
TOP_GIVEN_NAMES: List[str] = [
    "jacob",
    "michael",
    "emma",
    "william",
    "ethan",
    "olivia",
    "matthew",
    "emily",
    "daniel",
    "noah",
    "joshua",
    "isabella",
    "alexander",
    "joseph",
    "james",
    "andrew",
    "sophia",
    "christopher",
    "anthony",
    "david",
    "madison",
    "logan",
    "benjamin",
    "ryan",
    "abigail",
    "john",
    "elijah",
    "mason",
    "samuel",
    "dylan",
    "nicholas",
    "jayden",
    "liam",
    "elizabeth",
    "christian",
    "gabriel",
    "tyler",
    "jonathan",
    "nathan",
    "jordan",
    "hannah",
    "aiden",
    "jackson",
    "alexis",
    "caleb",
    "lucas",
    "angel",
    "brandon",
    "brian",
    "ashley",
]

#: Names outside the top-50 used to populate realistic device owners;
#: these must NOT be matched by the analysis (the paper accepts the
#: top-50 bias deliberately).
OTHER_GIVEN_NAMES: List[str] = [
    "gary",
    "francesca",
    "piet",
    "marieke",
    "sven",
    "ingrid",
    "henk",
    "paolo",
    "yuki",
    "chen",
    "amara",
    "kofi",
    "lars",
    "saskia",
    "bram",
    "femke",
    "giulia",
    "mateo",
    "priya",
    "ravi",
]


def name_popularity_weights() -> Dict[str, float]:
    """A Zipf-like popularity weight per top-50 name.

    The SSA ranking is heavy-tailed; a 1/rank weighting reproduces the
    decreasing-count shape of Figure 2 without embedding exact SSA
    counts.
    """
    return {name: 1.0 / (rank + 1) for rank, name in enumerate(TOP_GIVEN_NAMES)}
