"""Term lexicons for hostname analysis.

* :data:`DEVICE_TERMS` — the device make/model/kind terms of the
  paper's Figure 3 (ipad, air, laptop, phone, dell, desktop, iphone,
  mbp, android, macbook, galaxy, lenovo, chrome, roku).
* :data:`GENERIC_ROUTER_TERMS` — "generic terms that convey location or
  router-level information ... less likely to be used in client
  hostname prefixes" (Section 5.1), used to exclude router-level PTR
  records.
* :data:`CITY_NAMES_WITH_GIVEN_NAME_OVERLAP` — city names that collide
  with given names (the paper's Jackson/Jacksonville example); used by
  the simulation to stress the suffix-threshold defence of Section 5.1.
"""

from __future__ import annotations

from typing import FrozenSet, List

#: Figure-3 device terms, in the paper's x-axis order.
DEVICE_TERMS: List[str] = [
    "ipad",
    "air",
    "laptop",
    "phone",
    "dell",
    "desktop",
    "iphone",
    "mbp",
    "android",
    "macbook",
    "galaxy",
    "lenovo",
    "chrome",
    "roku",
]

#: Router/location terms used to exclude infrastructure records.
GENERIC_ROUTER_TERMS: FrozenSet[str] = frozenset(
    {
        # Compass / location words (the paper's examples: north, south).
        "north",
        "south",
        "east",
        "west",
        # Router-level interface naming (cf. Chabarek & Barford; Luckie et al.).
        "core",
        "edge",
        "border",
        "gw",
        "gateway",
        "rtr",
        "router",
        "sw",
        "switch",
        "ae",
        "xe",
        "ge",
        "te",
        "eth",
        "vlan",
        "pos",
        "bundle",
        "loopback",
        "mgmt",
        "uplink",
        "transit",
        "peer",
        "peering",
        "ix",
        "pop",
        "dc",
        "colo",
        # Generic service infrastructure.
        "static",
        "dynamic",
        "dhcp",
        "pool",
        "nat",
        "vpn",
        "wlan",
        "wifi",
        "dsl",
        "cable",
        "fiber",
        "ftth",
        "mail",
        "smtp",
        "dns",
        "ns",
        "www",
        "firewall",
        "fw",
        "proxy",
        "lb",
        "vip",
    }
)

#: City names that embed a top-50 given name as a substring or whole word.
CITY_NAMES_WITH_GIVEN_NAME_OVERLAP: List[str] = [
    "jackson",
    "jacksonville",
    "madison",
    "logan",
    "tyler",
]

#: Non-colliding city names used alongside the overlap set in
#: router-level hostnames.
PLAIN_CITY_NAMES: List[str] = [
    "lincoln",
    "austin",
    "charlotte",
    "houston",
    "denver",
    "phoenix",
    "boston",
    "seattle",
]
