"""Dependency-free metrics primitives: counters, gauges, histograms.

Modelled on the Prometheus client data model (the lingua franca of the
measurement platforms this reproduction imitates) but stripped to what
a deterministic simulation needs:

* :class:`Counter` — monotonically increasing totals, with labelled
  children (``counter.labels(rcode="nxdomain").inc()``);
* :class:`Gauge` — point-in-time values with high-water-mark merge
  semantics (``set_max``), suited to queue depths;
* :class:`Histogram` — fixed-bound bucket counts (attempt counts,
  lingering minutes).

A :class:`MetricsRegistry` names and owns the metrics.  Its
:meth:`~MetricsRegistry.snapshot` output is a plain, JSON-serialisable
dict with **sorted** keys, and :meth:`~MetricsRegistry.merge_snapshot`
folds one snapshot into another: counters and histogram buckets add,
gauges take the maximum.  Merging is associative and commutative (the
per-network campaign registries can be combined in any grouping and
still produce identical totals — pinned by ``tests/obs``), which is
what lets child-process registries be merged deterministically into
the parent, same discipline as the campaign's timestamp merge.

The disabled path is a first-class citizen: :data:`NULL_REGISTRY`
hands out shared no-op singletons whose ``inc``/``set``/``observe``
bodies are empty, so instrumenting a hot path costs one attribute
lookup and an empty call when observability is off.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple, Union

Number = Union[int, float]

#: Default histogram bounds: small-count scale (attempts, retries).
DEFAULT_BUCKETS: Tuple[Number, ...] = (1, 2, 3, 5, 8, 13, 21)


def _escape_label_component(text: object) -> str:
    """Escape a label name or value for use inside a child key.

    ``%`` first (it is the escape introducer), then the two structural
    characters of the key syntax.  The mapping is injective, so two
    distinct label dicts can never produce the same key — previously
    ``labels(a="1,b=2")`` and ``labels(a="1", b="2")`` both flattened
    to ``a=1,b=2`` and silently merged their counts.
    """
    return (
        str(text).replace("%", "%25").replace("=", "%3D").replace(",", "%2C")
    )


def _label_key(labels: Dict[str, object]) -> str:
    """Canonical child key: ``k1=v1,k2=v2`` with sorted label names.

    Values (and names) are escaped via :func:`_escape_label_component`
    so a value containing ``,`` or ``=`` cannot be confused with
    additional labels; keys remain deterministic — sorted by the *raw*
    label name — and stable across runs, so snapshot payloads merge
    exactly as before for label values without structural characters.
    """
    return ",".join(
        f"{_escape_label_component(key)}={_escape_label_component(labels[key])}"
        for key in sorted(labels)
    )


class Counter:
    """A monotonically increasing total, with optional labelled children."""

    kind = "counter"
    __slots__ = ("name", "_value", "_children")

    def __init__(self, name: str):
        self.name = name
        self._value: Number = 0
        self._children: Dict[str, "Counter"] = {}

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    def labels(self, **labels) -> "Counter":
        """The child counter for one label combination (created on use).

        Children accumulate independently of the parent: callers that
        want a total across labels should also ``inc()`` the parent, or
        read :meth:`snapshot`'s per-label values and sum.
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = Counter(self.name)
        return child

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> dict:
        payload: dict = {"value": self._value}
        if self._children:
            payload["labels"] = {
                key: self._children[key]._value for key in sorted(self._children)
            }
        return payload

    def merge_snapshot(self, payload: dict) -> None:
        self._value += payload.get("value", 0)
        for key, value in payload.get("labels", {}).items():
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Counter(self.name)
            child._value += value


class Gauge:
    """A point-in-time value.  Merges by maximum (high-water mark)."""

    kind = "gauge"
    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Number = 0

    def set(self, value: Number) -> None:
        self._value = value

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if it is higher (high-water)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> dict:
        return {"value": self._value}

    def merge_snapshot(self, payload: dict) -> None:
        self.set_max(payload.get("value", 0))


class Histogram:
    """Fixed-bound bucket counts plus a running count and sum.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket (``+Inf``) catches the rest.  Merging adds bucket counts,
    counts and sums — associative, and bit-stable for the integral
    observations the pipeline records.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "_bucket_counts", "_count", "_sum")

    def __init__(self, name: str, bounds: Iterable[Number] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum: Number = 0

    def observe(self, value: Number) -> None:
        self._bucket_counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> Number:
        return self._sum

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound}": count
            for bound, count in zip(self.bounds, self._bucket_counts)
        }
        buckets["le_inf"] = self._bucket_counts[-1]
        return {"buckets": buckets, "count": self._count, "sum": self._sum}

    def merge_snapshot(self, payload: dict) -> None:
        theirs = payload.get("buckets", {})
        mine = self.snapshot()["buckets"]
        if set(theirs) != set(mine):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket bounds"
            )
        for index, bound in enumerate(self.bounds):
            self._bucket_counts[index] += theirs[f"le_{bound}"]
        self._bucket_counts[-1] += theirs["le_inf"]
        self._count += payload.get("count", 0)
        self._sum += payload.get("sum", 0)


class _NullMetric:
    """Shared no-op stand-in for every metric kind when disabled."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def set_max(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def labels(self, **labels) -> "_NullMetric":
        return self

    @property
    def value(self) -> Number:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> Number:
        return 0


_NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Names and owns a family of metrics; snapshots deterministically."""

    __slots__ = ("enabled", "_metrics")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    # -- creation / lookup -----------------------------------------------------

    def _get(self, name: str, kind: str, factory):
        if not self.enabled:
            return _NULL_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"requested as a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str, bounds: Iterable[Number] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(name, bounds))

    # -- reading ---------------------------------------------------------------

    def value(self, name: str, labels: Optional[Dict[str, object]] = None) -> Number:
        """Convenience read for tests and reports; 0 for unknown names."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if labels:
            snapshot = metric.snapshot()
            return snapshot.get("labels", {}).get(_label_key(labels), 0)
        return metric.value if metric.kind != "histogram" else metric.count

    def names(self):
        return sorted(self._metrics)

    # -- serialisation / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """A deterministic JSON-serialisable dump (sorted names, kinds).

        Histogram snapshots gain a ``bounds`` list so a merge target
        can be reconstructed from the payload alone.
        """
        payload: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = metric.snapshot()
            if metric.kind == "histogram":
                entry["bounds"] = list(metric.bounds)
            payload[metric.kind + "s"][name] = entry
        return payload

    def merge_snapshot(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` payload in: add counters/histograms,
        max gauges.  A no-op on a disabled registry."""
        if not self.enabled:
            return
        for name, entry in payload.get("counters", {}).items():
            self.counter(name).merge_snapshot(entry)
        for name, entry in payload.get("gauges", {}).items():
            self.gauge(name).merge_snapshot(entry)
        for name, entry in payload.get("histograms", {}).items():
            bounds = entry.get("bounds", DEFAULT_BUCKETS)
            self.histogram(name, bounds).merge_snapshot(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge snapshot payloads (in the given order) into one payload."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


#: The shared disabled registry; every metric it returns is a no-op.
NULL_REGISTRY = MetricsRegistry(enabled=False)
