"""The run manifest: provenance + metrics + spans, serialised to JSON.

A :class:`RunManifest` is the artifact ``--metrics-out PATH`` (or the
``REPRO_METRICS_OUT`` environment variable) writes: everything needed
to audit a measurement run after the fact —

* ``run``     — provenance: seed, world fingerprint, fault profile,
  command, windows;
* ``metrics`` — the deterministic registry snapshot (simulation
  counts, resolver rcode breakdowns, probe/lookup totals);
* ``spans``   — the deterministic stage tree (names, labels, counts);
* ``timings`` — the **only** section allowed to differ between
  equivalent runs: wall-clock per span, worker counts, cache traffic.

Diff discipline: two runs of the same study — serial, ``--workers N``
or cache-replay — produce manifests whose payloads are bit-identical
once ``timings`` is removed (``jq 'del(.timings)'``), which is pinned
by the equivalence tests.  JSON is dumped with sorted keys so the
comparison really is byte-level.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

#: Environment variable naming the manifest output path.
METRICS_OUT_ENV = "REPRO_METRICS_OUT"

#: Bump when the manifest schema changes.
MANIFEST_VERSION = 1


class RunManifest:
    """A complete, serialisable record of one measurement run."""

    __slots__ = ("run_info", "metrics", "spans", "timings")

    def __init__(
        self,
        *,
        run_info: Optional[dict] = None,
        metrics: Optional[dict] = None,
        spans: Optional[List[dict]] = None,
        timings: Optional[dict] = None,
    ):
        self.run_info = dict(run_info or {})
        self.metrics = metrics or {"counters": {}, "gauges": {}, "histograms": {}}
        self.spans = list(spans or [])
        self.timings = dict(timings or {})

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        """The full manifest, ``timings`` included."""
        payload = self.deterministic_payload()
        payload["timings"] = self.timings
        return payload

    def deterministic_payload(self) -> dict:
        """The manifest minus ``timings`` — identical across serial,
        parallel and cache-replay runs of the same study."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "run": self.run_info,
            "metrics": self.metrics,
            "spans": self.spans,
        }

    def to_json(self, *, include_timings: bool = True) -> str:
        payload = self.to_payload() if include_timings else self.deterministic_payload()
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def write(self, path) -> pathlib.Path:
        target = pathlib.Path(path)
        if target.parent != pathlib.Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    # -- deserialisation -------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: dict) -> "RunManifest":
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r} (expected {MANIFEST_VERSION})"
            )
        return cls(
            run_info=payload.get("run", {}),
            metrics=payload.get("metrics"),
            spans=payload.get("spans", []),
            timings=payload.get("timings", {}),
        )

    @classmethod
    def read(cls, path) -> "RunManifest":
        text = pathlib.Path(path).read_text(encoding="utf-8")
        return cls.from_payload(json.loads(text))

    # -- convenience -----------------------------------------------------------

    def counter_value(self, name: str, label: Optional[str] = None):
        """Read one counter (or labelled child) from the snapshot; 0 if absent."""
        entry: Dict = self.metrics.get("counters", {}).get(name, {})
        if label is not None:
            return entry.get("labels", {}).get(label, 0)
        return entry.get("value", 0)

    def span_paths(self) -> List[str]:
        """Flattened ``a/b[c=d]`` span paths, depth-first."""
        paths: List[str] = []

        def walk(entry: dict, prefix: str) -> None:
            labels = entry.get("labels")
            name = entry["name"]
            if labels:
                rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
                name = f"{name}[{rendered}]"
            path = f"{prefix}/{name}" if prefix else name
            paths.append(path)
            for child in entry.get("children", []):
                walk(child, path)

        for root in self.spans:
            walk(root, "")
        return paths
