"""Span-based stage tracing for the measurement pipeline.

A :class:`Tracer` records a tree of named spans — one per pipeline
stage (``with tracer.span("dynamicity", network=...)``) — mirroring
how production measurement platforms attribute time to stages.

Determinism discipline: a span's *structure* (name, labels, nesting
order) and its *attributes* (counts the stage chose to record via
:meth:`SpanRecord.set`) are pure functions of the work done, so they
serialise into the deterministic part of the run manifest.  Wall-clock
durations are measured too, but surface only through
:meth:`Tracer.timings_payload`, which the manifest files under its
explicitly marked ``timings`` section.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class SpanRecord:
    """One traced stage: name, labels, deterministic attributes, children."""

    __slots__ = ("name", "labels", "attributes", "children", "wall_seconds")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.attributes: Dict[str, object] = {}
        self.children: List["SpanRecord"] = []
        self.wall_seconds: float = 0.0

    def set(self, key: str, value) -> None:
        """Attach one deterministic attribute (a count, a flag)."""
        self.attributes[key] = value

    @property
    def path(self) -> str:
        """This span's display path component, labels included."""
        if not self.labels:
            return self.name
        rendered = ",".join(f"{key}={self.labels[key]}" for key in sorted(self.labels))
        return f"{self.name}[{rendered}]"

    def payload(self) -> dict:
        """Deterministic serialisation: no wall-clock anywhere."""
        entry: dict = {"name": self.name}
        if self.labels:
            entry["labels"] = {key: self.labels[key] for key in sorted(self.labels)}
        if self.attributes:
            entry["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        if self.children:
            entry["children"] = [child.payload() for child in self.children]
        return entry


class _NullSpan:
    """No-op span the disabled tracer yields."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans into a tree; nesting follows the call stack."""

    __slots__ = ("enabled", "roots", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    @contextmanager
    def span(self, name: str, **labels):
        """Trace one stage; yields the :class:`SpanRecord` for attributes."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        record = self._attach(SpanRecord(name, labels))
        self._stack.append(record)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_seconds = time.perf_counter() - started
            self._stack.pop()

    def add_span(
        self,
        name: str,
        *,
        labels: Optional[Dict[str, object]] = None,
        attributes: Optional[Dict[str, object]] = None,
        seconds: float = 0.0,
    ) -> Optional[SpanRecord]:
        """Record an already-completed stage (e.g. work a child process did)."""
        if not self.enabled:
            return None
        record = self._attach(SpanRecord(name, labels))
        record.attributes.update(attributes or {})
        record.wall_seconds = seconds
        return record

    def _attach(self, record: SpanRecord) -> SpanRecord:
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        return record

    # -- serialisation ---------------------------------------------------------

    def spans_payload(self) -> List[dict]:
        """The deterministic span tree (structure + attributes only)."""
        return [root.payload() for root in self.roots]

    def timings_payload(self) -> Dict[str, float]:
        """Wall-clock seconds per span path (``a/b[c=d]`` keys)."""
        timings: Dict[str, float] = {}

        def walk(record: SpanRecord, prefix: str) -> None:
            path = f"{prefix}/{record.path}" if prefix else record.path
            # Duplicate paths (same stage re-entered) accumulate.
            timings[path] = timings.get(path, 0.0) + record.wall_seconds
            for child in record.children:
                walk(child, path)

        for root in self.roots:
            walk(root, "")
        return timings

    def render(self) -> str:
        """A human-readable tree for ``--trace`` output."""
        lines: List[str] = []

        def walk(record: SpanRecord, depth: int) -> None:
            attrs = ""
            if record.attributes:
                rendered = ", ".join(
                    f"{key}={record.attributes[key]}"
                    for key in sorted(record.attributes)
                )
                attrs = f"  ({rendered})"
            lines.append(
                f"{'  ' * depth}{record.path}  {record.wall_seconds:.3f}s{attrs}"
            )
            for child in record.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)


#: The shared disabled tracer.
NULL_TRACER = Tracer(enabled=False)
