"""Unified observability for the measurement plane.

Production measurement platforms (OpenINTEL, ZMap — the paper's two
substrates) live or die by per-stage metrics and run provenance.  This
package is the reproduction's equivalent: a dependency-free metrics
registry (:mod:`repro.obs.metrics`), span-based stage tracing
(:mod:`repro.obs.trace`) and a serialisable run manifest
(:mod:`repro.obs.manifest`), bundled behind one :class:`Observability`
handle that every layer of the pipeline accepts.

Two properties are load-bearing:

* **Determinism.**  Everything outside the manifest's explicitly
  marked ``timings`` section is a pure function of (world, window,
  parameters): simulation counts, resolver rcode breakdowns,
  per-stage span structure.  Serial, parallel and cache-replay runs
  therefore emit bit-identical manifests once ``timings`` is dropped
  (see :meth:`~repro.obs.manifest.RunManifest.deterministic_payload`).
  Wall-clock durations, worker counts and cache traffic — all of
  which legitimately vary run to run — live only under ``timings``.

* **Zero cost when off.**  The default handle (:data:`NULL_OBS`) is
  disabled: its registry hands out shared no-op metric singletons and
  its tracer yields a no-op span, so instrumented hot paths pay one
  attribute lookup and an empty call.  The throughput benchmarks
  guard this (``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.manifest import METRICS_OUT_ENV, RunManifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
)
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NULL_OBS",
    "METRICS_OUT_ENV",
    "Observability",
    "RunManifest",
    "SpanRecord",
    "Tracer",
    "merge_snapshots",
    "resolve_obs",
]


class Observability:
    """One handle bundling a metrics registry, a tracer and run info.

    ``metrics`` holds deterministic counters/gauges/histograms;
    ``tracer`` records the span tree (structure deterministic, wall
    durations not); ``run_info`` carries provenance (seed, world
    fingerprint, fault profile); ``execution`` carries run-shape
    details that are *expected* to differ between equivalent runs
    (worker counts, cache hits/misses, transports) and is serialised
    inside the manifest's ``timings`` section only.
    """

    __slots__ = ("enabled", "metrics", "tracer", "run_info", "execution")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry() if enabled else NULL_REGISTRY
        self.tracer = Tracer() if enabled else NULL_TRACER
        self.run_info: dict = {}
        self.execution: dict = {}

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **labels):
        """Context manager tracing one pipeline stage."""
        return self.tracer.span(name, **labels)

    def set_run_info(self, **fields) -> None:
        """Record provenance fields (seed, world fingerprint, ...)."""
        if self.enabled:
            self.run_info.update(fields)

    def record_execution(self, section: str, accumulate: bool = False, **fields) -> None:
        """Record run-shape details under ``timings.execution``.

        With ``accumulate=True`` numeric fields add to any previously
        recorded value (so repeated collections sum their cache
        traffic); otherwise values overwrite.
        """
        if not self.enabled:
            return
        bucket = self.execution.setdefault(section, {})
        for key, value in fields.items():
            if (
                accumulate
                and not isinstance(value, bool)
                and isinstance(value, (int, float))
            ):
                bucket[key] = bucket.get(key, 0) + value
            else:
                bucket[key] = value

    # -- output --------------------------------------------------------------

    def manifest(self) -> RunManifest:
        """Snapshot everything recorded so far into a manifest."""
        return RunManifest(
            run_info=dict(self.run_info),
            metrics=self.metrics.snapshot(),
            spans=self.tracer.spans_payload(),
            timings={
                "spans": self.tracer.timings_payload(),
                "execution": {
                    section: dict(fields)
                    for section, fields in sorted(self.execution.items())
                },
            },
        )

    def write_manifest(self, path) -> "RunManifest":
        manifest = self.manifest()
        manifest.write(path)
        return manifest


#: The shared disabled handle: every instrumented component defaults to
#: this, making observability strictly opt-in and (near) zero cost.
NULL_OBS = Observability(enabled=False)


def resolve_obs(obs: Optional[Observability]) -> Observability:
    """``obs`` if given, else the shared no-op handle."""
    return obs if obs is not None else NULL_OBS


def metrics_out_path() -> Optional[str]:
    """The manifest output path from ``REPRO_METRICS_OUT``, if set."""
    return os.environ.get(METRICS_OUT_ENV) or None
