"""Turning DHCP Host Names into DNS labels.

Device names arrive in DHCP messages in free form ("Brian's iPhone",
"Brian's Galaxy Note9").  Before an IPAM system can publish them as PTR
rdata, they must become valid DNS labels; the conventional mapping —
lower-case, apostrophes dropped, separators collapsed to hyphens — is
exactly what produces the paper's ``brians-iphone`` and
``brians-galaxy-note9`` hostnames.
"""

from __future__ import annotations

import re

from repro.dns.name import MAX_LABEL_LENGTH

_DROP = re.compile(r"[’']")
_SEPARATORS = re.compile(r"[^a-z0-9]+")
_HYPHEN_RUNS = re.compile(r"-{2,}")

FALLBACK_LABEL = "host"


def sanitize_host_name(raw: str, *, fallback: str = FALLBACK_LABEL) -> str:
    """Convert a client-provided device name into a single DNS label.

    >>> sanitize_host_name("Brian's iPhone")
    'brians-iphone'
    >>> sanitize_host_name("Brian's Galaxy Note9")
    'brians-galaxy-note9'

    The result is a non-empty, LDH (letters-digits-hyphen) label of at
    most 63 octets; input with no salvageable characters yields
    ``fallback``.
    """
    label = raw.lower()
    label = _DROP.sub("", label)
    label = _SEPARATORS.sub("-", label)
    label = _HYPHEN_RUNS.sub("-", label)
    label = label.strip("-")
    if not label:
        return fallback
    if len(label) > MAX_LABEL_LENGTH:
        label = label[:MAX_LABEL_LENGTH].rstrip("-") or fallback
    return label
