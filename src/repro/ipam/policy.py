"""DNS-update policies: how a lease becomes (or doesn't become) a PTR.

The policy decides what hostname, if any, an IPAM system publishes for
a newly bound lease.  The four implementations span the spectrum the
paper discusses:

* :class:`CarryOverPolicy` — the leaky practice under study: sanitize
  the DHCP Host Name and publish it under the network's suffix
  (``brians-iphone.campus.example.edu``).
* :class:`StaticTemplatePolicy` — fixed-form records such as
  ``host1234.dynamic.institute.edu`` (the 83 additional prefixes in the
  paper's validation); dynamicity is hidden because the record content
  never changes, and the record can be pre-provisioned for every
  address.
* :class:`HashedPolicy` — the "some sort of hash seems prudent"
  mitigation from Section 8: publish a keyed digest instead of the
  identifier.
* :class:`NoUpdatePolicy` — do not couple DHCP to DNS at all.
"""

from __future__ import annotations

import abc
import hashlib
import ipaddress
from typing import Optional

from repro.dhcp.lease import Lease
from repro.ipam.hostname import sanitize_host_name


class DnsUpdatePolicy(abc.ABC):
    """Decides the published hostname for a lease.

    ``hostname_for`` returns the fully-qualified hostname to publish in
    the PTR record, or ``None`` to publish nothing.
    """

    #: True when the policy changes zone content as clients come and go.
    exposes_dynamics: bool = True

    def __init__(self, suffix: str):
        self.suffix = suffix.strip(".")
        if not self.suffix:
            raise ValueError("policy needs a non-empty hostname suffix")

    @abc.abstractmethod
    def hostname_for(self, lease: Lease) -> Optional[str]:
        """The FQDN to publish for ``lease``, or None."""

    def _token_params(self) -> tuple:
        """Identity parameters beyond the suffix (for :meth:`cache_token`)."""
        return ()

    def cache_token(self) -> str:
        """A deterministic fingerprint of the policy's published output.

        Two policies share a token only when they publish identical
        zone content for identical leases; every constructor parameter
        that shapes the output is folded in.  The world-level
        :meth:`~repro.netsim.internet.Internet.cache_token` embeds this
        per subnet, so on-disk snapshot/campaign caches can never serve
        one policy's records for another (the class name alone could:
        two ``HashedPolicy`` instances with different keys publish
        different zones).
        """
        parts = [self.suffix, *self._token_params()]
        return f"{type(self).__name__}({','.join(parts)})"

    def static_hostname_for(self, address) -> Optional[str]:
        """The record to restore once the lease goes away, or None.

        Policies that pre-provision fixed-form records (static
        templates) return that form here; carry-over policies return
        None, meaning the PTR is simply removed.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(suffix={self.suffix!r})"


class CarryOverPolicy(DnsUpdatePolicy):
    """Publish the client-provided Host Name — the privacy leak."""

    exposes_dynamics = True

    def __init__(self, suffix: str, *, fallback_prefix: str = "dhcp"):
        super().__init__(suffix)
        self.fallback_prefix = fallback_prefix
        # Sanitisation is a pure string transform, and renewals re-ask
        # for the same host names every half lease-time; the population
        # of distinct names is bounded by the device population.
        self._sanitized: dict = {}

    def _token_params(self) -> tuple:
        return (f"fallback={self.fallback_prefix}",)

    def hostname_for(self, lease: Lease) -> Optional[str]:
        name = lease.host_name
        if name:
            label = self._sanitized.get(name)
            if label is None:
                label = sanitize_host_name(name)
                self._sanitized[name] = label
        else:
            label = self._fallback_label(lease.address)
        return f"{label}.{self.suffix}"

    def _fallback_label(self, address) -> str:
        dashed = str(address).replace(".", "-")
        return f"{self.fallback_prefix}-{dashed}"


class StaticTemplatePolicy(DnsUpdatePolicy):
    """Fixed-form records derived from the address only.

    Because the published name is a pure function of the IP address,
    the record can exist permanently: the zone content does not change
    as clients come and go (``exposes_dynamics`` is False).  This is
    the behaviour of the 83 confirmed-DHCP-but-static prefixes in the
    paper's validation (Section 4.1).
    """

    exposes_dynamics = False

    def __init__(self, suffix: str, *, template: str = "host-{dashed}"):
        super().__init__(suffix)
        if "{dashed}" not in template and "{last_octet}" not in template:
            raise ValueError("template must reference {dashed} or {last_octet}")
        self.template = template

    def _token_params(self) -> tuple:
        return (f"template={self.template}",)

    def _label(self, address) -> str:
        if isinstance(address, ipaddress.IPv4Address):
            ip = address
        else:
            ip = ipaddress.ip_address(address)
        return self.template.format(
            dashed=str(ip).replace(".", "-"),
            last_octet=str(ip).rsplit(".", 1)[-1],
        )

    def hostname_for(self, lease: Lease) -> Optional[str]:
        return f"{self._label(lease.address)}.{self.suffix}"

    def static_hostname_for(self, address) -> Optional[str]:
        return f"{self._label(address)}.{self.suffix}"


class HashedPolicy(DnsUpdatePolicy):
    """Publish a keyed digest of the client identifier (Section 8).

    The hostname still changes per client (so two devices do not
    collide) but carries no recoverable identity.  Dynamics remain
    observable — the mitigation removes the *content* leak only, which
    is exactly the nuance the paper's discussion draws.
    """

    exposes_dynamics = True

    def __init__(self, suffix: str, *, key: bytes = b"", digest_length: int = 12):
        super().__init__(suffix)
        if not 4 <= digest_length <= 32:
            raise ValueError("digest_length must be between 4 and 32")
        self.key = key
        self.digest_length = digest_length
        self._digests: dict = {}

    def _token_params(self) -> tuple:
        # The raw key is a secret; a digest prefix identifies it just
        # as well without writing it into cache-key material on disk.
        key_digest = hashlib.sha256(self.key).hexdigest()[:16]
        return (f"key={key_digest}", f"len={self.digest_length}")

    def hostname_for(self, lease: Lease) -> Optional[str]:
        hostname = self._digests.get(lease.client_id)
        if hostname is None:
            material = self.key + lease.client_id.encode("utf-8")
            digest = hashlib.sha256(material).hexdigest()[: self.digest_length]
            hostname = f"h-{digest}.{self.suffix}"
            self._digests[lease.client_id] = hostname
        return hostname


class NoUpdatePolicy(DnsUpdatePolicy):
    """Never publish anything: DHCP and DNS are fully decoupled."""

    exposes_dynamics = False

    def hostname_for(self, lease: Lease) -> Optional[str]:
        return None


#: Plan-level policy names, in the order the paper discusses them.
#: These are the values a :class:`~repro.netsim.worldplan.WorldPlan`
#: entry's ``update_policy`` key may carry, and the policy axis of the
#: countermeasure evaluation matrix (:mod:`repro.eval`).
POLICY_NAMES = ("carry-over", "hashed", "static-template", "no-update")

#: Fixed key for plan-declared hashed policies.  A plan is a pure JSON
#: value, so the key must be derivable from it; a constant keeps two
#: processes holding the same plan publishing the same digests.
_PLAN_HASH_KEY = b"plan-zone-key"


def make_policy(name: str, suffix: str) -> DnsUpdatePolicy:
    """Build the named policy for ``suffix`` (plan/CLI entry point)."""
    if name == "carry-over":
        return CarryOverPolicy(suffix)
    if name == "hashed":
        return HashedPolicy(suffix, key=_PLAN_HASH_KEY)
    if name == "static-template":
        return StaticTemplatePolicy(suffix)
    if name == "no-update":
        return NoUpdatePolicy(suffix)
    raise ValueError(f"unknown policy {name!r} (want one of {POLICY_NAMES})")
