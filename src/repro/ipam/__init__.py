"""IP Address Management (IPAM): the DHCP-to-DNS bridge.

IPAM systems (Section 2.1) link DHCP and DNS so that "when a client
requests a DHCP lease and is allocated an IP address, various changes
to the DNS related to the IP address are made automatically."  This
package implements that bridge, with the DNS-update policy as an
explicit, swappable object — because the paper's mitigation discussion
(Section 8) is precisely about choosing a less-leaky policy.
"""

from repro.ipam.hostname import sanitize_host_name
from repro.ipam.policy import (
    POLICY_NAMES,
    CarryOverPolicy,
    DnsUpdatePolicy,
    HashedPolicy,
    NoUpdatePolicy,
    StaticTemplatePolicy,
    make_policy,
)
from repro.ipam.system import IpamSystem

__all__ = [
    "CarryOverPolicy",
    "DnsUpdatePolicy",
    "HashedPolicy",
    "IpamSystem",
    "NoUpdatePolicy",
    "POLICY_NAMES",
    "StaticTemplatePolicy",
    "make_policy",
    "sanitize_host_name",
]
