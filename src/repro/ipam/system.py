"""The IPAM system: subscribe to lease events, mutate the reverse zone.

This is the automation the paper identifies as the root of the privacy
exposure: "if changes to the (public) DNS are made as client devices
join or leave a network, one may be able to infer network dynamics by
capturing DNS changes" (Section 2.1).

Knobs map to behaviours the measurements observe:

* ``remove_on_release`` / ``remove_on_expiry`` — whether phase-3 events
  revert the PTR.  Releases produce the ~5-minute peak of Figure 7a,
  expiries the hour-multiple peaks.
* ``honor_client_no_update`` — whether a Client FQDN option with the N
  flag suppresses the update (an open question in the paper's
  future-work list; defaults to not honouring it, matching the leaks
  observed in the wild).
* ``update_delay_seconds`` — processing lag between the DHCP event and
  the DNS change landing, for fine-grained timing studies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dhcp.events import LeaseEvent, LeaseEventKind
from repro.dhcp.server import DhcpServer
from repro.dns.forward import ForwardZone
from repro.dns.zone import ReverseZone
from repro.ipam.policy import DnsUpdatePolicy

FORWARD_ALWAYS = "always"
FORWARD_CLIENT_REQUESTED = "client-requested"
FORWARD_NEVER = "never"


class IpamSystem:
    """Mirrors one DHCP server's lease events into one reverse zone."""

    def __init__(
        self,
        zone: ReverseZone,
        policy: DnsUpdatePolicy,
        *,
        remove_on_release: bool = True,
        remove_on_expiry: bool = True,
        honor_client_no_update: bool = False,
        update_delay_seconds: int = 0,
        forward_zone: Optional[ForwardZone] = None,
        forward_updates: str = FORWARD_ALWAYS,
        use_rfc2136: bool = False,
    ):
        if update_delay_seconds < 0:
            raise ValueError("update_delay_seconds must be non-negative")
        if forward_updates not in (FORWARD_ALWAYS, FORWARD_CLIENT_REQUESTED, FORWARD_NEVER):
            raise ValueError(f"invalid forward_updates mode {forward_updates!r}")
        self.zone = zone
        self.policy = policy
        # Forward DNS can be dynamically updated too (the paper's
        # Section 10 future work; RFC 4702's S flag exists for it).
        self.forward_zone = forward_zone
        self.forward_updates = forward_updates
        # Route reverse-zone changes through RFC 2136 UPDATE messages
        # (full wire-format round trip) instead of direct zone calls —
        # the protocol path real DHCP servers and IPAM systems use.
        self._update_client = None
        if use_rfc2136:
            from repro.dns.update import DnsUpdateClient, UpdateHandler

            self._update_client = DnsUpdateClient(UpdateHandler(zone))
        self.remove_on_release = remove_on_release
        self.remove_on_expiry = remove_on_expiry
        self.honor_client_no_update = honor_client_no_update
        self.update_delay_seconds = update_delay_seconds
        self.updates_applied = 0
        self.updates_suppressed = 0
        self._pending: List[Tuple[int, LeaseEvent]] = []

    def attach(self, server: DhcpServer) -> "IpamSystem":
        """Subscribe to ``server``'s lease events; returns self."""
        server.subscribe(self.on_lease_event, batch=self.on_lease_batch)
        return self

    def provision_static_records(self, *, at: int = 0) -> int:
        """Pre-create fixed-form PTRs for every address the policy covers.

        Only meaningful for policies with a ``static_hostname_for``;
        returns the number of records created.  This reproduces the
        paper's "DHCP but static rDNS" prefixes, which the dynamicity
        heuristic must *not* flag.
        """
        created = 0
        for address in self.zone.prefix:
            hostname = self.policy.static_hostname_for(address)
            if hostname is not None:
                self.zone.set_ptr(address, hostname, at=at)
                created += 1
        return created

    # -- event handling -----------------------------------------------------

    def on_lease_event(self, event: LeaseEvent) -> None:
        """Handle a lease event, possibly after the configured delay."""
        if self.update_delay_seconds:
            self._pending.append((event.at + self.update_delay_seconds, event))
            return
        self._apply(event, event.at)

    def on_lease_batch(self, events: List[LeaseEvent]) -> None:
        """Handle one tick's worth of lease events in event order.

        Equivalent to calling :meth:`on_lease_event` per event, without
        paying the per-event dispatch through the server's listener
        loop.
        """
        if self.update_delay_seconds:
            delay = self.update_delay_seconds
            self._pending.extend((event.at + delay, event) for event in events)
            return
        for event in events:
            self._apply(event, event.at)

    def flush_pending(self, now: int) -> int:
        """Apply all delayed updates due at or before ``now``."""
        due = [(when, event) for when, event in self._pending if when <= now]
        self._pending = [(when, event) for when, event in self._pending if when > now]
        for when, event in sorted(due, key=lambda pair: pair[0]):
            self._apply(event, when)
        return len(due)

    def _apply(self, event: LeaseEvent, at: int) -> None:
        if event.kind is LeaseEventKind.BOUND:
            self._on_bound(event, at)
        elif event.kind is LeaseEventKind.RENEWED:
            self._on_renewed(event, at)
        elif event.kind is LeaseEventKind.RELEASED:
            if self.remove_on_release:
                self._revert(event, at)
        elif event.kind is LeaseEventKind.EXPIRED:
            if self.remove_on_expiry:
                self._revert(event, at)

    def _client_opted_out(self, event: LeaseEvent) -> bool:
        fqdn = event.lease.client_fqdn
        return fqdn is not None and fqdn.no_server_update

    def _on_bound(self, event: LeaseEvent, at: int) -> None:
        if self.honor_client_no_update and self._client_opted_out(event):
            self.updates_suppressed += 1
            return
        hostname = self.policy.hostname_for(event.lease)
        if hostname is None:
            self.updates_suppressed += 1
            return
        self._zone_set(event.lease.address, hostname, at)
        self.updates_applied += 1
        self._forward_add(event, hostname)

    def _on_renewed(self, event: LeaseEvent, at: int) -> None:
        # Renewals re-assert the record; content changes only if the
        # client changed its Host Name mid-lease.
        hostname = self.policy.hostname_for(event.lease)
        if hostname is None:
            return
        current = self.zone.get_hostname(event.lease.address)
        if current != hostname:
            self._zone_set(event.lease.address, hostname, at)
            self.updates_applied += 1

    def _forward_wanted(self, event: LeaseEvent) -> bool:
        if self.forward_zone is None or self.forward_updates == FORWARD_NEVER:
            return False
        if self.forward_updates == FORWARD_ALWAYS:
            return True
        fqdn = event.lease.client_fqdn
        return fqdn is not None and fqdn.server_updates

    def _forward_add(self, event: LeaseEvent, hostname: str) -> None:
        if not self._forward_wanted(event):
            return
        try:
            self.forward_zone.set_a(hostname, event.lease.address)  # type: ignore[union-attr]
        except Exception:
            # Hostname outside the forward zone's origin: skip quietly,
            # as real servers do for out-of-zone names.
            return

    def _forward_remove(self, event: LeaseEvent) -> None:
        if self.forward_zone is None:
            return
        hostname = self.policy.hostname_for(event.lease)
        if hostname is None:
            return
        try:
            self.forward_zone.remove_a(hostname)  # type: ignore[union-attr]
        except Exception:
            return

    def _revert(self, event: LeaseEvent, at: int) -> None:
        self._forward_remove(event)
        static = self.policy.static_hostname_for(event.lease.address)
        if static is not None:
            current = self.zone.get_hostname(event.lease.address)
            if current != static:
                self._zone_set(event.lease.address, static, at)
                self.updates_applied += 1
            return
        had_record = self.zone.get_ptr(event.lease.address) is not None
        self._zone_remove(event.lease.address, at)
        if had_record:
            self.updates_applied += 1

    def _zone_set(self, address, hostname: str, at: int) -> None:
        if self._update_client is not None:
            self._update_client.set_ptr(address, hostname, at=at)
        else:
            self.zone.set_ptr(address, hostname, at=at)

    def _zone_remove(self, address, at: int) -> None:
        if self._update_client is not None:
            self._update_client.remove_ptr(address, at=at)
        else:
            self.zone.remove_ptr(address, at=at)

    @property
    def rfc2136_updates_sent(self) -> int:
        return self._update_client.updates_sent if self._update_client else 0

    def __repr__(self) -> str:
        return (
            f"IpamSystem(zone={self.zone.prefix}, policy={self.policy!r}, "
            f"applied={self.updates_applied})"
        )
