"""Multi-pattern substring matching via an Aho-Corasick automaton.

The Section 5 drill-down asks, for every hostname in a multi-year PTR
series, *which of thousands of given names appear as substrings* — the
naive loop (``name in hostname`` per name) is O(#patterns) per
hostname and dominated the leak-identification hot path.  The automaton
answers the same question in a single left-to-right pass over the
hostname, independent of the pattern count.

Match semantics are identical to the substring loop: a pattern
"matches" when it occurs anywhere in the text; overlapping and nested
occurrences all count (``jacksonville`` contains both ``jackson`` and
``jack``).  :meth:`AhoCorasick.find_unique` returns the *set* of
matched patterns, which is what the name and device-term matchers
consume.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


class AhoCorasick:
    """A compiled multi-pattern matcher.

    Build once over a pattern list, then call :meth:`find_unique` (all
    distinct patterns contained in a text) or :meth:`contains_any` (an
    early-exit boolean) per text.  Patterns are matched case-sensitively;
    callers lower-case both sides, as the naive matchers did.
    """

    __slots__ = ("patterns", "_goto", "_fail", "_out")

    def __init__(self, patterns: Sequence[str]):
        unique: List[str] = []
        seen: Set[str] = set()
        for pattern in patterns:
            if not pattern:
                raise ValueError("empty patterns cannot match anything")
            if pattern not in seen:
                seen.add(pattern)
                unique.append(pattern)
        if not unique:
            raise ValueError("at least one pattern is required")
        self.patterns: Tuple[str, ...] = tuple(unique)
        # Trie: per-node dict of char -> next node id.
        goto: List[Dict[str, int]] = [{}]
        out: List[Tuple[int, ...]] = [()]
        for index, pattern in enumerate(self.patterns):
            node = 0
            for char in pattern:
                nxt = goto[node].get(char)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][char] = nxt
                    goto.append({})
                    out.append(())
                node = nxt
            out[node] = out[node] + (index,)
        # Failure links by BFS; outputs aggregate along the fail chain,
        # so matching never walks the chain at query time.
        fail = [0] * len(goto)
        queue = deque()
        for node in goto[0].values():
            queue.append(node)
        while queue:
            node = queue.popleft()
            for char, child in goto[node].items():
                queue.append(child)
                state = fail[node]
                while state and char not in goto[state]:
                    state = fail[state]
                fail[child] = goto[state].get(char, 0)
                if fail[child] == child:  # root self-transition guard
                    fail[child] = 0
                if out[fail[child]]:
                    out[child] = out[child] + out[fail[child]]
        self._goto = goto
        self._fail = fail
        self._out = out

    def __len__(self) -> int:
        return len(self.patterns)

    def _step(self, state: int, char: str) -> int:
        goto = self._goto
        fail = self._fail
        while True:
            nxt = goto[state].get(char)
            if nxt is not None:
                return nxt
            if state == 0:
                return 0
            state = fail[state]

    def find_unique(self, text: str) -> Set[str]:
        """All distinct patterns occurring in ``text`` (single pass)."""
        state = 0
        found: Set[int] = set()
        out = self._out
        for char in text:
            state = self._step(state, char)
            if out[state]:
                found.update(out[state])
        patterns = self.patterns
        return {patterns[index] for index in found}

    def contains_any(self, text: str) -> bool:
        """Whether any pattern occurs in ``text`` (early exit)."""
        state = 0
        out = self._out
        for char in text:
            state = self._step(state, char)
            if out[state]:
                return True
        return False

    def iter_matches(self, text: str) -> Iterable[Tuple[int, str]]:
        """Yield ``(end_index, pattern)`` for every occurrence, in scan order."""
        state = 0
        out = self._out
        patterns = self.patterns
        for position, char in enumerate(text):
            state = self._step(state, char)
            for index in out[state]:
                yield position, patterns[index]


def naive_find_unique(patterns: Iterable[str], text: str) -> FrozenSet[str]:
    """The O(#patterns) reference implementation the automaton replaces.

    Kept as the oracle for the property-based equivalence tests.
    """
    return frozenset(pattern for pattern in patterns if pattern in text)
