"""The paper's analysis pipeline.

Everything in this package operates on *measurement data* (snapshot
series, supplemental observations) rather than on simulation ground
truth:

* :mod:`repro.core.dynamicity` — the Section 4.1 heuristic that flags
  /24 prefixes whose daily PTR population is dynamic;
* :mod:`repro.core.prefixes` — mapping dynamic /24s to announced
  prefixes (Figure 1);
* :mod:`repro.core.terms` / :mod:`repro.core.names` — hostname term
  extraction, router-level filtering and given-name matching;
* :mod:`repro.core.leaks` — the Section 5.1 drill-down to identified,
  identity-leaking networks (Figures 2-3);
* :mod:`repro.core.classify` — network-type inference (Figure 4);
* :mod:`repro.core.grouping` / :mod:`repro.core.timing` — activity
  groups and PTR-lingering analysis (Table 5, Figure 7);
* :mod:`repro.core.tracking` — following named devices over time
  (Figure 8);
* :mod:`repro.core.occupancy` — longitudinal and hourly occupancy
  (Figures 9-11).
"""

from repro.core.dynamicity import (
    DictReferenceAnalyzer,
    DynamicityAnalyzer,
    DynamicityReport,
    DynamicityThresholds,
    IncrementalDynamicityAnalyzer,
    PrefixDynamicity,
)
from repro.core.prefixes import AnnouncedPrefixMap, dynamic_fraction_summary
from repro.core.terms import (
    extract_terms,
    hostname_suffix,
    is_router_level,
)
from repro.core.names import GivenNameMatcher
from repro.core.leaks import LeakIdentifier, LeakReport, LeakThresholds, SuffixStats
from repro.core.classify import NetworkTypeClassifier
from repro.core.exposure import ExposureAuditor, ExposureReport, audit_by_network
from repro.core.grouping import ActivityGroup, GroupBuilder, GroupFunnel
from repro.core.timing import LingeringAnalysis, lingering_analysis
from repro.core.tracking import DeviceTracker, TrackedDevice
from repro.core.occupancy import (
    HeistPlanner,
    hourly_activity,
    relative_daily_presence,
    subnet_presence_split,
)

__all__ = [
    "ActivityGroup",
    "AnnouncedPrefixMap",
    "DeviceTracker",
    "DictReferenceAnalyzer",
    "DynamicityAnalyzer",
    "DynamicityReport",
    "DynamicityThresholds",
    "ExposureAuditor",
    "ExposureReport",
    "GivenNameMatcher",
    "GroupBuilder",
    "GroupFunnel",
    "HeistPlanner",
    "IncrementalDynamicityAnalyzer",
    "LeakIdentifier",
    "LeakReport",
    "LeakThresholds",
    "LingeringAnalysis",
    "NetworkTypeClassifier",
    "PrefixDynamicity",
    "SuffixStats",
    "TrackedDevice",
    "audit_by_network",
    "dynamic_fraction_summary",
    "extract_terms",
    "hostname_suffix",
    "hourly_activity",
    "is_router_level",
    "lingering_analysis",
    "relative_daily_presence",
    "subnet_presence_split",
]
