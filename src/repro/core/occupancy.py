"""Occupancy analyses: work-from-home and heist timing (Sections 7.2-7.3).

* :func:`relative_daily_presence` — daily PTR counts for a network as a
  percentage of the maximum observed (the y-axis of Figure 9);
* :func:`subnet_presence_split` — the same, split by subnet group
  (education buildings vs student housing: Figure 10);
* :func:`hourly_activity` and :class:`HeistPlanner` — hourly activity
  from supplemental data and the least-populated hour (Figure 11).
"""

from __future__ import annotations

import datetime as dt
import ipaddress
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.netsim.simtime import HOUR, date_of, hour_of_day, is_weekend
from repro.scan.campaign import SupplementalDataset
from repro.scan.snapshot import SnapshotSeries

Prefixable = Union[str, ipaddress.IPv4Network]


def _slash24_in(prefix: ipaddress.IPv4Network, key: str) -> bool:
    return ipaddress.IPv4Network(key).subnet_of(prefix)


def daily_totals_for_prefixes(
    series: SnapshotSeries, prefixes: Sequence[Prefixable]
) -> Dict[dt.date, int]:
    """Per-day PTR record totals inside the given prefixes."""
    networks = [ipaddress.IPv4Network(prefix) for prefix in prefixes]
    totals: Dict[dt.date, int] = {}
    membership_cache: Dict[str, bool] = {}
    # The no-copy view when the series offers one; duck-typed series
    # (tests, adapters) fall back to the copying accessor.
    counts_for = getattr(series, "counts_view", None) or series.counts_by_slash24
    for day in series.days:
        total = 0
        for key, count in counts_for(day).items():
            inside = membership_cache.get(key)
            if inside is None:
                inside = any(_slash24_in(network, key) for network in networks)
                membership_cache[key] = inside
            if inside:
                total += count
        totals[day] = total
    return totals


def relative_daily_presence(
    series: SnapshotSeries, prefixes: Sequence[Prefixable]
) -> Dict[dt.date, float]:
    """Daily totals as a percentage of the maximum observed (Figure 9)."""
    totals = daily_totals_for_prefixes(series, prefixes)
    peak = max(totals.values(), default=0)
    if peak == 0:
        return {day: 0.0 for day in totals}
    return {day: 100.0 * count / peak for day, count in totals.items()}


def subnet_presence_split(
    series: SnapshotSeries, groups: Mapping[str, Sequence[Prefixable]]
) -> Dict[str, Dict[dt.date, float]]:
    """Relative presence per named subnet group (Figure 10).

    ``groups`` maps a label ("Educational buildings", "Student
    housing") to the prefixes belonging to it; each group is
    normalised to its own maximum, as in the paper's figure.
    """
    return {
        label: relative_daily_presence(series, prefixes)
        for label, prefixes in groups.items()
    }


def crossover_dates(
    first: Mapping[dt.date, float], second: Mapping[dt.date, float]
) -> List[dt.date]:
    """Days where the (first - second) series changes sign.

    Used to locate the March-2020 education/housing crossover.
    """
    days = sorted(set(first) & set(second))
    crossings = []
    previous_sign = 0
    for day in days:
        difference = first[day] - second[day]
        sign = (difference > 0) - (difference < 0)
        if sign and previous_sign and sign != previous_sign:
            crossings.append(day)
        if sign:
            previous_sign = sign
    return crossings


# -- Figure 11: the heist ---------------------------------------------------------


def hourly_activity(
    dataset: SupplementalDataset, network: str
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """(ICMP, rDNS) activity per hour-start timestamp for one network.

    Counts distinct addresses per wall-clock hour, from ICMP responses
    and from successful rDNS observations respectively.
    """
    icmp_sets: Dict[int, set] = defaultdict(set)
    for observation in dataset.icmp:
        if observation.network == network:
            icmp_sets[(observation.at // HOUR) * HOUR].add(observation.address)
    rdns_sets: Dict[int, set] = defaultdict(set)
    for observation in dataset.rdns:
        if observation.network == network and observation.ok:
            rdns_sets[(observation.at // HOUR) * HOUR].add(observation.address)
    return (
        {hour: len(addresses) for hour, addresses in icmp_sets.items()},
        {hour: len(addresses) for hour, addresses in rdns_sets.items()},
    )


@dataclass
class HeistPlan:
    """The planner's recommendation.

    ``samples_by_hour`` counts how many measured hours back each
    average; under fault injection (lost probes, failed lookups) a
    recommendation resting on very few samples deserves suspicion.
    """

    hour_of_day: int
    average_activity: float
    activity_by_hour: Dict[int, float]
    samples_by_hour: Dict[int, int] = field(default_factory=dict)

    def min_samples(self) -> int:
        """The thinnest evidence behind any hour's average."""
        return min(self.samples_by_hour.values(), default=0)


class HeistPlanner:
    """Finds the quietest hour of the day from measurement data alone.

    "Ideally, from the robber's perspective, they are able to determine
    the point in time at which the fewest dynamic clients are around"
    (Section 7.3).  The paper's example lands at approximately 6 AM on
    weekdays.
    """

    def __init__(self, dataset: SupplementalDataset, network: str):
        self.dataset = dataset
        self.network = network

    def plan(
        self,
        *,
        source: str = "rdns",
        weekdays_only: bool = True,
        start: Optional[dt.date] = None,
        end: Optional[dt.date] = None,
    ) -> HeistPlan:
        """Average per-hour-of-day activity; recommend the minimum.

        ``source`` is "rdns" (works even against ping-blocking
        networks) or "icmp".
        """
        if source not in ("rdns", "icmp"):
            raise ValueError("source must be 'rdns' or 'icmp'")
        icmp_hours, rdns_hours = hourly_activity(self.dataset, self.network)
        hours = rdns_hours if source == "rdns" else icmp_hours
        sums: Dict[int, float] = defaultdict(float)
        counts: Dict[int, int] = defaultdict(int)
        for hour_start, active in hours.items():
            day = date_of(hour_start)
            if weekdays_only and is_weekend(hour_start):
                continue
            if start is not None and day < start:
                continue
            if end is not None and day > end:
                continue
            hour = hour_of_day(hour_start)
            sums[hour] += active
            counts[hour] += 1
        if not counts:
            raise ValueError(f"no {source} activity data for {self.network}")
        averages = {hour: sums[hour] / counts[hour] for hour in counts}
        best_hour = min(averages, key=lambda hour: (averages[hour], hour))
        return HeistPlan(
            hour_of_day=best_hour,
            average_activity=averages[best_hour],
            activity_by_hour=dict(sorted(averages.items())),
            samples_by_hour=dict(sorted(counts.items())),
        )
