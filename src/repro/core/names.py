"""Given-name matching in hostnames (Section 5.1).

Hostnames "contain" a given name when the name appears as a substring
(``brians-iphone`` contains *brian*; the city ``jacksonville`` contains
*jackson* — the confound the suffix thresholds must absorb).  Only
names of at least three characters are considered, mirroring the
paper's note that shorter terms "add a lot of noise".

Matching runs on a compiled :class:`~repro.core.automaton.AhoCorasick`
automaton: one pass per hostname regardless of how many thousand names
are loaded, where the historic implementation looped ``name in
hostname`` over the whole list.  Results are identical to the
substring loop (the property tests in ``tests/core/test_automaton.py``
pin this), and longest-first tie-breaking for :meth:`first_match` is
preserved.
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.core.automaton import AhoCorasick
from repro.datasets.names import TOP_GIVEN_NAMES


class GivenNameMatcher:
    """Finds given names contained in hostnames."""

    def __init__(self, names: Sequence[str] = tuple(TOP_GIVEN_NAMES), *, min_length: int = 3):
        cleaned = []
        for name in names:
            name = name.lower().strip()
            if len(name) >= min_length:
                cleaned.append(name)
        if not cleaned:
            raise ValueError("no usable names after the length filter")
        # Longest first so 'jackson' wins over 'jack' if both are listed;
        # the alphabetical tiebreak makes equal-length ordering stable
        # across processes (plain ``sorted(set(...), key=len)`` depended
        # on hash-randomised set order).
        self.names: List[str] = sorted(set(cleaned), key=lambda name: (-len(name), name))
        self._name_set: FrozenSet[str] = frozenset(self.names)
        self._automaton = AhoCorasick(self.names)

    def match(self, hostname: str) -> Set[str]:
        """All names contained in ``hostname`` (lower-cased substring)."""
        return self._automaton.find_unique(hostname.lower())

    def matches(self, hostname: str) -> bool:
        return self._automaton.contains_any(hostname.lower())

    def first_match(self, hostname: str) -> Optional[str]:
        """The longest name contained in ``hostname``, or None."""
        found = self._automaton.find_unique(hostname.lower())
        if not found:
            return None
        return min(found, key=lambda name: (-len(name), name))

    def count_matches(self, hostnames: Iterable[str]) -> Counter:
        """Per-name count of hostnames containing each name (Figure 2)."""
        counter: Counter = Counter()
        for hostname in hostnames:
            counter.update(self.match(hostname))
        return counter

    def __contains__(self, name: object) -> bool:
        return name in self._name_set

    def __len__(self) -> int:
        return len(self.names)
