"""Given-name matching in hostnames (Section 5.1).

Hostnames "contain" a given name when the name appears as a substring
(``brians-iphone`` contains *brian*; the city ``jacksonville`` contains
*jackson* — the confound the suffix thresholds must absorb).  Only
names of at least three characters are considered, mirroring the
paper's note that shorter terms "add a lot of noise".
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.datasets.names import TOP_GIVEN_NAMES


class GivenNameMatcher:
    """Finds given names contained in hostnames."""

    def __init__(self, names: Sequence[str] = tuple(TOP_GIVEN_NAMES), *, min_length: int = 3):
        cleaned = []
        for name in names:
            name = name.lower().strip()
            if len(name) >= min_length:
                cleaned.append(name)
        if not cleaned:
            raise ValueError("no usable names after the length filter")
        # Longest first so 'jackson' wins over 'jack' if both are listed.
        self.names: List[str] = sorted(set(cleaned), key=len, reverse=True)
        self._name_set: FrozenSet[str] = frozenset(self.names)

    def match(self, hostname: str) -> Set[str]:
        """All names contained in ``hostname`` (lower-cased substring)."""
        haystack = hostname.lower()
        return {name for name in self.names if name in haystack}

    def matches(self, hostname: str) -> bool:
        haystack = hostname.lower()
        return any(name in haystack for name in self.names)

    def first_match(self, hostname: str):
        """The longest name contained in ``hostname``, or None."""
        haystack = hostname.lower()
        for name in self.names:
            if name in haystack:
                return name
        return None

    def count_matches(self, hostnames: Iterable[str]) -> Counter:
        """Per-name count of hostnames containing each name (Figure 2)."""
        counter: Counter = Counter()
        for hostname in hostnames:
            counter.update(self.match(hostname))
        return counter

    def __contains__(self, name: object) -> bool:
        return name in self._name_set

    def __len__(self) -> int:
        return len(self.names)
