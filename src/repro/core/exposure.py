"""Operator-facing exposure audit.

The paper's mitigation advice (Section 8) asks operators to review
"the configuration of the internal networks".  This module gives them
the attacker's view of their own address space: given a window of rDNS
observations (their own zone's content over time), it scores how much
an outsider can learn.

Three exposure dimensions are scored, each normalised to [0, 1]:

* **identity** — share of observed records whose hostnames carry
  person or device identifiers;
* **dynamics** — how strongly record churn tracks client presence
  (records appearing and disappearing rather than staying constant);
* **trackability** — how stable (address, hostname) pairings are over
  time, i.e. how easy it is to follow one device across days.
"""

from __future__ import annotations

import datetime as dt
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.names import GivenNameMatcher
from repro.core.terms import extract_terms, is_router_level
from repro.datasets.terms import DEVICE_TERMS
from repro.netsim.simtime import date_of
from repro.scan.observations import RdnsObservation


@dataclass(frozen=True)
class ExposureReport:
    """The audit outcome for one network."""

    records_observed: int
    identity_score: float
    dynamics_score: float
    trackability_score: float
    named_hostnames: Tuple[str, ...]
    device_term_hostnames: Tuple[str, ...]

    @property
    def overall(self) -> float:
        """Overall exposure in [0, 1] (simple mean of the dimensions)."""
        return (self.identity_score + self.dynamics_score + self.trackability_score) / 3

    def grade(self) -> str:
        """A letter grade an operator can act on."""
        overall = self.overall
        if overall < 0.15:
            return "A"
        if overall < 0.35:
            return "B"
        if overall < 0.55:
            return "C"
        if overall < 0.75:
            return "D"
        return "F"

    def summary(self) -> str:
        return (
            f"exposure grade {self.grade()} "
            f"(identity={self.identity_score:.2f}, dynamics={self.dynamics_score:.2f}, "
            f"trackability={self.trackability_score:.2f}; "
            f"{self.records_observed} records observed)"
        )


class ExposureAuditor:
    """Scores rDNS exposure from observation data alone."""

    def __init__(self, matcher: Optional[GivenNameMatcher] = None, *, sample_limit: int = 10):
        self.matcher = matcher or GivenNameMatcher()
        self.sample_limit = sample_limit

    def audit(self, observations: Iterable[RdnsObservation]) -> ExposureReport:
        """Audit one network's observation window."""
        ok_observations = [obs for obs in observations if obs.ok]
        hostnames_by_address: Dict[object, Set[str]] = defaultdict(set)
        days_by_pair: Dict[Tuple[object, str], Set[dt.date]] = defaultdict(set)
        presence_by_address: Dict[object, Set[dt.date]] = defaultdict(set)
        named: List[str] = []
        device_termed: List[str] = []
        client_hostnames: Set[str] = set()

        for obs in ok_observations:
            hostname = obs.hostname
            hostnames_by_address[obs.address].add(hostname)
            day = date_of(obs.at)
            days_by_pair[(obs.address, hostname)].add(day)
            presence_by_address[obs.address].add(day)
            if is_router_level(hostname):
                continue
            client_hostnames.add(hostname)
            if self.matcher.matches(hostname):
                if hostname not in named:
                    named.append(hostname)
            terms = set(extract_terms(hostname))
            if any(term in terms or term in hostname for term in DEVICE_TERMS):
                if hostname not in device_termed:
                    device_termed.append(hostname)

        if not ok_observations:
            return ExposureReport(0, 0.0, 0.0, 0.0, (), ())

        identity = self._identity_score(client_hostnames, named, device_termed)
        dynamics = self._dynamics_score(presence_by_address)
        trackability = self._trackability_score(days_by_pair, hostnames_by_address)
        return ExposureReport(
            records_observed=len({(obs.address, obs.hostname) for obs in ok_observations}),
            identity_score=identity,
            dynamics_score=dynamics,
            trackability_score=trackability,
            named_hostnames=tuple(named[: self.sample_limit]),
            device_term_hostnames=tuple(device_termed[: self.sample_limit]),
        )

    def _identity_score(self, client_hostnames, named, device_termed) -> float:
        if not client_hostnames:
            return 0.0
        carrying = {h for h in named} | {h for h in device_termed}
        return len(carrying & client_hostnames) / len(client_hostnames)

    def _dynamics_score(self, presence_by_address) -> float:
        """Share of addresses whose records come and go across days."""
        if not presence_by_address:
            return 0.0
        all_days: Set[dt.date] = set()
        for days in presence_by_address.values():
            all_days |= days
        if len(all_days) < 2:
            return 0.0
        intermittent = sum(
            1 for days in presence_by_address.values() if 0 < len(days) < len(all_days)
        )
        return intermittent / len(presence_by_address)

    def _trackability_score(self, days_by_pair, hostnames_by_address) -> float:
        """How persistently (address, hostname) pairs recur over days."""
        multi_day = [days for days in days_by_pair.values() if len(days) >= 2]
        if not days_by_pair:
            return 0.0
        persistence = len(multi_day) / len(days_by_pair)
        # Stable addressing amplifies persistence: one hostname per
        # address means an observer needs no correlation step at all.
        single_named = sum(1 for names in hostnames_by_address.values() if len(names) == 1)
        stability = single_named / len(hostnames_by_address)
        return (persistence + stability) / 2


def audit_by_network(
    observations: Iterable[RdnsObservation], *, auditor: Optional[ExposureAuditor] = None
) -> Dict[str, ExposureReport]:
    """Run the audit separately for every network in the observations."""
    auditor = auditor or ExposureAuditor()
    by_network: Dict[str, List[RdnsObservation]] = defaultdict(list)
    for obs in observations:
        by_network[obs.network].append(obs)
    return {network: auditor.audit(batch) for network, batch in sorted(by_network.items())}
