"""Network-type classification (Section 5.2, Figure 4).

The paper matches ``.edu`` / ``.ac`` / ``.gov`` suffixes by regular
expression and manually inspects the rest for ISP and enterprise
signals.  The keyword lists below stand in for that manual inspection;
suffixes matching nothing become *other*, exactly as the paper's 11.2%
unclassifiable share.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable

from repro.netsim.network import NetworkType

_ACADEMIC_RE = re.compile(r"(\.edu$|\.edu\.|\.ac$|\.ac\.)")
_GOVERNMENT_RE = re.compile(r"(\.gov$|\.gov\.)")

_ACADEMIC_KEYWORDS = ("university", "uni", "college", "campus", "school", "institute")
_ISP_KEYWORDS = (
    "isp",
    "dsl",
    "cable",
    "fiber",
    "ftth",
    "broadband",
    "telecom",
    "wireless",
    "dyn",
    "dynamic",
    "pool",
    "res",
    "customer",
    "client",
)
_ENTERPRISE_KEYWORDS = ("corp", "inc", "gmbh", "llc", "office", "hq", "group", "firm")


class NetworkTypeClassifier:
    """Infers a network type from its hostname suffix."""

    def classify(self, suffix: str) -> NetworkType:
        suffix = suffix.lower().strip(".")
        if _ACADEMIC_RE.search("." + suffix):
            return NetworkType.ACADEMIC
        if _GOVERNMENT_RE.search("." + suffix):
            return NetworkType.GOVERNMENT
        words = set(re.findall(r"[a-z]+", suffix))
        hyphen_parts = set()
        for word in list(words):
            hyphen_parts.update(word.split("-"))
        words |= hyphen_parts
        if words & set(_ACADEMIC_KEYWORDS):
            return NetworkType.ACADEMIC
        if words & set(_ISP_KEYWORDS) or self._looks_like_isp(suffix):
            return NetworkType.ISP
        if words & set(_ENTERPRISE_KEYWORDS) or suffix.endswith(".com"):
            return NetworkType.ENTERPRISE
        return NetworkType.OTHER

    def _looks_like_isp(self, suffix: str) -> bool:
        # Residential access networks conventionally live under .net.
        return suffix.endswith(".net") and any(
            keyword in suffix for keyword in ("net", "isp", "broadband", "telco")
        ) and not suffix.endswith("example.net")

    def breakdown(self, suffixes: Iterable[str]) -> Dict[NetworkType, int]:
        """Type histogram over suffixes (the Figure 4 bar)."""
        counts: Counter = Counter(self.classify(suffix) for suffix in suffixes)
        return {net_type: counts.get(net_type, 0) for net_type in NetworkType}

    def breakdown_percent(self, suffixes: Iterable[str]) -> Dict[NetworkType, float]:
        suffixes = list(suffixes)
        if not suffixes:
            return {net_type: 0.0 for net_type in NetworkType}
        counts = self.breakdown(suffixes)
        total = sum(counts.values())
        return {net_type: 100.0 * count / total for net_type, count in counts.items()}
