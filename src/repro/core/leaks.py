"""Identifying privacy-leaking networks (Section 5.1).

Starting from /24s flagged by the dynamicity heuristic, the pipeline:

1. keeps PTR records inside dynamic /24s;
2. excludes router-level records (generic location/interface terms);
3. matches the rest against the given-name list;
4. aggregates per hostname suffix: record count, uniquely matched
   names, and their ratio;
5. selects suffixes with at least ``min_unique_names`` unique matches
   (the paper uses 50 at Internet scale) and
6. a unique-names-to-records ratio of at least ``min_ratio`` (0.1) —
   the defence against city-name confounds such as *jackson* repeated
   across a router farm.

The report also retains the Figure-2 and Figure-3 series: given-name
and device-term counts before ("all matches") and after ("filtered
matches") the thresholds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.automaton import AhoCorasick
from repro.core.names import GivenNameMatcher
from repro.core.terms import extract_terms, hostname_suffix, is_router_level
from repro.datasets.terms import DEVICE_TERMS
from repro.netsim.network import slash24_of


@dataclass(frozen=True)
class LeakThresholds:
    """Selection thresholds of Section 5.1 (steps 5 and 6).

    The paper's ``min_unique_names=50`` operates at full-Internet scale
    with thousands of clients per network; scaled-down worlds pass a
    proportionally smaller value.
    """

    min_unique_names: int = 50
    min_ratio: float = 0.1

    def __post_init__(self) -> None:
        if self.min_unique_names < 1:
            raise ValueError("min_unique_names must be at least 1")
        if not 0 < self.min_ratio <= 1:
            raise ValueError("min_ratio must be in (0, 1]")


@dataclass
class SuffixStats:
    """Per-suffix aggregation (step 4)."""

    suffix: str
    records: int = 0
    unique_names: Set[str] = field(default_factory=set)
    name_counts: Counter = field(default_factory=Counter)
    device_term_counts: Counter = field(default_factory=Counter)

    @property
    def unique_name_count(self) -> int:
        return len(self.unique_names)

    @property
    def ratio(self) -> float:
        if not self.records:
            return 0.0
        return len(self.unique_names) / self.records

    def meets(self, thresholds: LeakThresholds) -> bool:
        return (
            self.unique_name_count >= thresholds.min_unique_names
            and self.ratio >= thresholds.min_ratio
        )


@dataclass
class LeakReport:
    """The outcome of the drill-down."""

    thresholds: LeakThresholds
    suffix_stats: Dict[str, SuffixStats]
    identified: List[str]
    #: Figure 2: per-name counts over all records vs identified networks.
    all_name_counts: Counter
    filtered_name_counts: Counter
    #: Figure 3: device-term counts in name-carrying records.
    all_device_term_counts: Counter
    filtered_device_term_counts: Counter

    @property
    def identified_count(self) -> int:
        return len(self.identified)

    def stats_for(self, suffix: str) -> SuffixStats:
        return self.suffix_stats[suffix]


class LeakIdentifier:
    """Runs steps 1-6 over one day's (or period's) PTR records."""

    def __init__(
        self,
        matcher: GivenNameMatcher = None,
        thresholds: LeakThresholds = LeakThresholds(),
        *,
        device_terms: Sequence[str] = tuple(DEVICE_TERMS),
    ):
        self.matcher = matcher or GivenNameMatcher()
        self.thresholds = thresholds
        self.device_terms = list(device_terms)
        self._term_set = frozenset(self.device_terms)
        # Substring-eligible terms (>= 3 chars) compile into one
        # automaton: a single pass per hostname instead of a loop over
        # the whole device-term lexicon.
        substring_terms = [term for term in self.device_terms if len(term) >= 3]
        self._term_automaton = AhoCorasick(substring_terms) if substring_terms else None

    def identify(
        self,
        records: Iterable[Tuple[object, str]],
        dynamic_24s: Iterable[str],
    ) -> LeakReport:
        """Drill down from (address, hostname) records to leaking suffixes.

        ``dynamic_24s`` is the set of /24 keys the dynamicity heuristic
        flagged; records outside it still feed the Figure-2 "all
        matches" series but cannot contribute to identification.
        """
        dynamic = set(dynamic_24s)
        suffix_stats: Dict[str, SuffixStats] = {}
        all_names: Counter = Counter()
        all_terms: Counter = Counter()

        for address, hostname in records:
            matched = self.matcher.match(hostname)
            if matched:
                all_names.update(matched)
                all_terms.update(self._device_terms_in(hostname))
            if slash24_of(address) not in dynamic:
                continue  # step 1: only dynamic space can identify
            if is_router_level(hostname):
                continue  # step 2: exclude router-level records
            if not matched:
                continue  # step 3: given-name match required
            suffix = hostname_suffix(hostname)
            stats = suffix_stats.get(suffix)
            if stats is None:
                stats = suffix_stats[suffix] = SuffixStats(suffix)
            stats.records += 1
            stats.unique_names.update(matched)
            stats.name_counts.update(matched)
            stats.device_term_counts.update(self._device_terms_in(hostname))

        identified = sorted(
            suffix
            for suffix, stats in suffix_stats.items()
            if stats.meets(self.thresholds)
        )
        filtered_names: Counter = Counter()
        filtered_terms: Counter = Counter()
        for suffix in identified:
            filtered_names.update(suffix_stats[suffix].name_counts)
            filtered_terms.update(suffix_stats[suffix].device_term_counts)

        return LeakReport(
            thresholds=self.thresholds,
            suffix_stats=suffix_stats,
            identified=identified,
            all_name_counts=all_names,
            filtered_name_counts=filtered_names,
            all_device_term_counts=all_terms,
            filtered_device_term_counts=filtered_terms,
        )

    def _device_terms_in(self, hostname: str) -> Set[str]:
        found = set(extract_terms(hostname)) & self._term_set
        # 'galaxy-note9' tokenises to {'galaxy', 'note'}; multi-token
        # device terms are matched as substrings of the whole hostname.
        if self._term_automaton is not None:
            found |= self._term_automaton.find_unique(hostname.lower())
        return found
