"""PTR lingering-time analysis (Section 6.2, Figures 7a and 7b).

For every usable activity group, the *lingering time* is the difference
between the last ICMP sample (client last seen) and the rDNS sample at
which the record was observed removed.  The paper's headline: "in
about 9 of 10 cases, the rDNS entries reverted within 60 minutes of a
client leaving the network", with histogram peaks near five minutes
(clean DHCP releases) and around multiples of an hour (lease expiry).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.grouping import ActivityGroup
from repro.netsim.simtime import MINUTE


@dataclass
class LingeringAnalysis:
    """Lingering-time distributions, overall and per network."""

    minutes: List[float] = field(default_factory=list)
    by_network: Dict[str, List[float]] = field(default_factory=dict)

    # -- Figure 7a -------------------------------------------------------------

    def histogram(self, *, bin_minutes: int = 5, max_minutes: int = 180) -> Counter:
        """Binned counts of lingering minutes (first three hours)."""
        if bin_minutes <= 0:
            raise ValueError("bin_minutes must be positive")
        counter: Counter = Counter()
        for value in self.minutes:
            if 0 <= value <= max_minutes:
                counter[int(value // bin_minutes) * bin_minutes] += 1
        return counter

    # -- Figure 7b ------------------------------------------------------------

    def cdf(self, network: Optional[str] = None, *, max_minutes: int = 120) -> List[Tuple[float, float]]:
        """(minutes, cumulative fraction) points for plotting."""
        values = sorted(self.by_network.get(network, []) if network else self.minutes)
        if not values:
            return []
        points = []
        total = len(values)
        for index, value in enumerate(values, start=1):
            if value > max_minutes:
                break
            points.append((value, index / total))
        return points

    def fraction_within(self, minutes: float, network: Optional[str] = None) -> float:
        """Share of groups whose record reverted within ``minutes``."""
        values = self.by_network.get(network, []) if network else self.minutes
        if not values:
            return 0.0
        return sum(1 for value in values if value <= minutes) / len(values)

    def quantile(self, q: float, network: Optional[str] = None) -> float:
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        values = sorted(self.by_network.get(network, []) if network else self.minutes)
        if not values:
            raise ValueError("no lingering data")
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def networks(self) -> List[str]:
        return sorted(name for name, values in self.by_network.items() if values)

    @property
    def count(self) -> int:
        return len(self.minutes)


def lingering_analysis(groups: Sequence[ActivityGroup]) -> LingeringAnalysis:
    """Compute lingering times for the given (usable) groups.

    Groups without an observed removal (the record outlived the
    follow) are skipped — they cannot contribute a difference.
    Negative differences (removal observed before the last ICMP sample,
    an artefact of probe interleaving) are also dropped.
    """
    analysis = LingeringAnalysis()
    for group in groups:
        lingering = group.lingering_seconds()
        if lingering is None or lingering < 0:
            continue
        minutes = lingering / MINUTE
        analysis.minutes.append(minutes)
        analysis.by_network.setdefault(group.network, []).append(minutes)
    return analysis
