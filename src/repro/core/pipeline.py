"""End-to-end study orchestration.

:class:`ReproductionStudy` wires the whole paper together: build (or
accept) a simulated world, collect snapshot series, run the dynamicity
heuristic, drill down to identified networks, run the supplemental
campaign, and derive groups and lingering times.  Each stage is lazy
and cached, so examples and the benchmark harness can share one study
object and pay for each simulation exactly once.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.classify import NetworkTypeClassifier
from repro.core.dynamicity import DynamicityAnalyzer, DynamicityReport, DynamicityThresholds
from repro.core.grouping import ActivityGroup, GroupBuilder, GroupFunnel
from repro.core.leaks import LeakIdentifier, LeakReport, LeakThresholds
from repro.core.names import GivenNameMatcher
from repro.core.prefixes import AnnouncedPrefixMap
from repro.core.timing import LingeringAnalysis, lingering_analysis
from repro.netsim.faults import FaultPlan
from repro.netsim.internet import World, WorldScale, build_world
from repro.netsim.network import NetworkType
from repro.netsim.worldplan import WorldPlan
from repro.obs import Observability, resolve_obs
from repro.scan.cache import CampaignCache, SnapshotCache
from repro.scan.campaign import CampaignMetrics, SupplementalCampaign, SupplementalDataset
from repro.scan.sharded import ShardedCampaign, ShardedCollector
from repro.scan.snapshot import CollectionMetrics, SnapshotCollector, SnapshotSeries


@dataclass
class StudyConfig:
    """Windows and thresholds for one full reproduction run.

    Every window is half-open ``[start, end)``: ``*_end`` dates are
    exclusive for both the snapshot collector and the supplemental
    campaign.  Defaults cover the paper's periods — dynamicity over
    2021-01-01..2021-03-31 and supplemental measurement
    2021-10-25..2021-12-05 (both inclusive of their last day, hence
    the exclusive ends of 04-01 and 12-06).  The ``min_unique_names``
    default is scaled to simulated-world size (the paper's value is 50
    at full-Internet scale).

    ``snapshot_workers`` fans daily collection over a process pool;
    ``snapshot_cache`` (a :class:`~repro.scan.cache.SnapshotCache`)
    reuses previously collected series across runs.  Likewise
    ``campaign_workers`` fans the supplemental campaign out one network
    per process, and ``campaign_cache`` (a
    :class:`~repro.scan.cache.CampaignCache`) replays a previously
    measured campaign dataset.  All four are bit-identical to the
    serial, uncached default.
    """

    seed: int = 0
    scale: Optional[WorldScale] = None
    #: Optional :class:`~repro.netsim.worldplan.WorldPlan`.  When set,
    #: the world builds from the plan (``scale`` is ignored) and the
    #: snapshot/campaign stages run the sharded engines of
    #: :mod:`repro.scan.sharded` with ``shards`` partitions — output
    #: stays byte-identical to an unsharded run over the same plan.
    plan: Optional[WorldPlan] = None
    shards: int = 1
    #: Ceiling on every process pool this study creates.  ``None``
    #: defers to the machine-wide :func:`repro.scan.parallel.worker_cap`
    #: (itself overridable via ``REPRO_MAX_WORKERS``).
    max_workers: Optional[int] = None
    dynamicity_start: dt.date = dt.date(2021, 1, 1)
    dynamicity_end: dt.date = dt.date(2021, 4, 1)
    dynamicity_thresholds: DynamicityThresholds = field(default_factory=DynamicityThresholds)
    leak_thresholds: LeakThresholds = field(
        default_factory=lambda: LeakThresholds(min_unique_names=6, min_ratio=0.1)
    )
    leak_sample_days: int = 7
    supplemental_start: dt.date = dt.date(2021, 10, 25)
    supplemental_end: dt.date = dt.date(2021, 12, 6)
    snapshot_workers: int = 1
    snapshot_cache: Optional[SnapshotCache] = None
    campaign_workers: int = 1
    campaign_cache: Optional[CampaignCache] = None
    #: Optional :class:`repro.netsim.faults.FaultPlan` applied to the
    #: supplemental campaign.  ``None`` (the default) leaves the
    #: decision to the ``REPRO_FAULT_PROFILE`` environment variable;
    #: outputs are unchanged unless a plan is actually active.
    fault_plan: Optional["FaultPlan"] = None
    #: Optional path for the serve layer's snapshot blockfile.  When
    #: set, :func:`repro.serve.app.build_app` writes the collected
    #: series there once at boot, maps it read-only, and
    #: ``POST /ingest/day`` appends a segment at EOF instead of
    #: rewriting — reads stay byte-identical to the in-memory mode.
    serve_blockfile: Optional[str] = None

    @classmethod
    def quick(cls, seed: int = 0) -> "StudyConfig":
        """A fast configuration for tests and smoke runs."""
        return cls(
            seed=seed,
            scale=WorldScale.small(),
            dynamicity_start=dt.date(2021, 1, 1),
            dynamicity_end=dt.date(2021, 1, 22),
            leak_thresholds=LeakThresholds(min_unique_names=3, min_ratio=0.05),
            leak_sample_days=7,
            supplemental_start=dt.date(2021, 11, 1),
            supplemental_end=dt.date(2021, 11, 4),
        )

    def capped_workers(self, requested: int) -> int:
        """``requested`` bounded by the study-level ``max_workers``."""
        if self.max_workers is None:
            return requested
        return max(1, min(requested, self.max_workers))


class ReproductionStudy:
    """Lazily materialises every stage of the reproduction."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        *,
        world: Optional[World] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or StudyConfig()
        #: Observability handle shared with every stage (no-op default).
        self.obs = resolve_obs(obs)
        self._world = world
        self._daily_series: Optional[SnapshotSeries] = None
        self._dynamicity: Optional[DynamicityReport] = None
        self._leaks: Optional[LeakReport] = None
        self._supplemental: Optional[SupplementalDataset] = None
        self._groups: Optional[List[ActivityGroup]] = None
        self._group_builder = GroupBuilder()
        #: Counters from the daily-series collection (None until run).
        self.collection_metrics: Optional[CollectionMetrics] = None
        #: Counters from the supplemental campaign (None until run).
        self.campaign_metrics: Optional[CampaignMetrics] = None

    # -- stages --------------------------------------------------------------

    @property
    def world(self) -> World:
        if self._world is None:
            with self.obs.span("build_world") as span:
                if self.config.plan is not None:
                    self._world = self.config.plan.build()
                else:
                    self._world = build_world(seed=self.config.seed, scale=self.config.scale)
                span.set("networks", len(self._world.internet))
            self.obs.set_run_info(
                seed=self.config.seed,
                world_fingerprint=(
                    f"plan:{self.config.plan.fingerprint()}"
                    if self.config.plan is not None
                    else self._world.internet.cache_token()
                ),
            )
        return self._world

    def daily_series(self) -> SnapshotSeries:
        """Daily snapshots over the dynamicity window (OpenINTEL-style)."""
        if self._daily_series is None:
            with self.obs.span("daily_series"):
                workers = self.config.capped_workers(self.config.snapshot_workers)
                if self.config.plan is not None:
                    sharded = ShardedCollector(
                        self.config.plan, shards=self.config.shards, obs=self.obs
                    )
                    self._daily_series = sharded.collect(
                        self.config.dynamicity_start,
                        self.config.dynamicity_end,
                        workers=workers,
                        cache=self.config.snapshot_cache,
                    )
                    self.collection_metrics = sharded.last_metrics
                else:
                    collector = SnapshotCollector.openintel_style(
                        self.world.internet, obs=self.obs
                    )
                    self._daily_series = collector.collect(
                        self.config.dynamicity_start,
                        self.config.dynamicity_end,
                        workers=workers,
                        cache=self.config.snapshot_cache,
                    )
                    self.collection_metrics = collector.last_metrics
        return self._daily_series

    def dynamicity(self) -> DynamicityReport:
        """Section 4: flag dynamic /24s."""
        if self._dynamicity is None:
            series = self.daily_series()
            with self.obs.span("dynamicity") as span:
                analyzer = DynamicityAnalyzer(self.config.dynamicity_thresholds)
                self._dynamicity = analyzer.analyze(series)
                span.set("dynamic_prefixes", len(self._dynamicity.dynamic_prefixes()))
        return self._dynamicity

    def announced_prefix_map(self) -> AnnouncedPrefixMap:
        return AnnouncedPrefixMap(
            (announcement.prefix, announcement.holder)
            for announcement in self.world.internet.announced_prefixes()
        )

    def leaks(self) -> LeakReport:
        """Section 5: identify identity-leaking networks.

        Records from the last ``leak_sample_days`` collected days feed
        the matcher (the paper uses daily OpenINTEL data).  The sample
        is built by one shared derivation pass
        (:meth:`~repro.scan.snapshot.SnapshotSeries.sample_records`):
        each (network, day) record list is derived exactly once and
        deduplicated up front — not re-simulated per sample day — and
        the pass fans out over the collection process pool when
        ``snapshot_workers > 1``.  Sample counters land in the series'
        ``last_sample_metrics``.
        """
        if self._leaks is None:
            series = self.daily_series()
            dynamic = set(self.dynamicity().dynamic_prefixes())
            with self.obs.span("leaks") as span:
                identifier = LeakIdentifier(GivenNameMatcher(), self.config.leak_thresholds)
                sample_days = series.days[-self.config.leak_sample_days:]
                records = series.sample_records(
                    sample_days,
                    workers=self.config.snapshot_workers,
                    obs=self.obs,
                )
                self._leaks = identifier.identify(records, dynamic)
                span.set("sample_days", len(sample_days))
                span.set("identified_networks", len(self._leaks.identified))
        return self._leaks

    def type_breakdown(self) -> Dict[NetworkType, float]:
        """Figure 4: type shares among identified networks."""
        classifier = NetworkTypeClassifier()
        return classifier.breakdown_percent(self.leaks().identified)

    def supplemental(self) -> SupplementalDataset:
        """Section 6.1: run the supplemental campaign."""
        if self._supplemental is None:
            with self.obs.span("supplemental"):
                workers = self.config.capped_workers(self.config.campaign_workers)
                fault_kwargs = (
                    {"fault_plan": self.config.fault_plan}
                    if self.config.fault_plan is not None
                    # No explicit plan: the campaign consults the
                    # REPRO_FAULT_PROFILE environment variable itself.
                    else {}
                )
                if self.config.plan is not None:
                    campaign = ShardedCampaign(
                        self.config.plan,
                        shards=self.config.shards,
                        obs=self.obs,
                        **fault_kwargs,
                    )
                else:
                    campaign = SupplementalCampaign(
                        self.world, obs=self.obs, **fault_kwargs
                    )
                self.obs.set_run_info(
                    fault_profile=(
                        campaign.fault_plan.name
                        if campaign.fault_plan is not None
                        else None
                    )
                )
                self._supplemental = campaign.run(
                    self.config.supplemental_start,
                    self.config.supplemental_end,
                    workers=workers,
                    cache=self.config.campaign_cache,
                )
                self.campaign_metrics = campaign.last_metrics
        return self._supplemental

    def groups(self) -> List[ActivityGroup]:
        if self._groups is None:
            dataset = self.supplemental()
            with self.obs.span("groups") as span:
                self._groups = self._group_builder.build(dataset)
                span.set("groups", len(self._groups))
        return self._groups

    def funnel(self) -> GroupFunnel:
        """Table 5."""
        return self._group_builder.funnel(self.groups())

    def usable_groups(self) -> List[ActivityGroup]:
        return self._group_builder.usable(self.groups())

    def lingering(self) -> LingeringAnalysis:
        """Figure 7."""
        groups = self.usable_groups()
        with self.obs.span("lingering") as span:
            analysis = lingering_analysis(groups)
            span.set("samples", len(analysis.minutes))
        return analysis
