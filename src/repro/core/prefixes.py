"""Mapping /24 prefixes to announced covering prefixes (Figure 1).

The paper maps "any /24 prefix that we identify as dynamic back to the
most-specific announced, covering prefix" and reports, per announced
prefix size, the distribution of the *fraction* of its /24 subprefixes
that behave dynamically.
"""

from __future__ import annotations

import ipaddress
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

Prefixable = Union[str, ipaddress.IPv4Network]


@dataclass(frozen=True)
class FractionSummary:
    """Min / median / max of dynamic-/24 fractions for one prefix size."""

    prefixlen: int
    prefixes: int
    minimum: float
    median: float
    maximum: float


class AnnouncedPrefixMap:
    """Longest-prefix matching of /24s against announced prefixes."""

    def __init__(self, announcements: Iterable[Tuple[Prefixable, str]]):
        self._by_length: Dict[int, Dict[int, Tuple[ipaddress.IPv4Network, str]]] = {}
        self._count = 0
        for prefix, holder in announcements:
            network = ipaddress.IPv4Network(prefix)
            if network.prefixlen > 24:
                raise ValueError(f"announced prefix {network} more specific than /24")
            table = self._by_length.setdefault(network.prefixlen, {})
            key = int(network.network_address)
            if key in table:
                raise ValueError(f"duplicate announcement for {network}")
            table[key] = (network, holder)
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def covering(self, prefix: Prefixable) -> Optional[Tuple[ipaddress.IPv4Network, str]]:
        """The most-specific announced prefix covering ``prefix``."""
        network = ipaddress.IPv4Network(prefix)
        address = int(network.network_address)
        for length in sorted(self._by_length, reverse=True):
            if length > network.prefixlen:
                continue
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            entry = self._by_length[length].get(address & mask)
            if entry is not None:
                return entry
        return None

    def dynamic_fractions(
        self, dynamic_24s: Iterable[Prefixable]
    ) -> Dict[ipaddress.IPv4Network, float]:
        """Fraction of each announced prefix's /24s that are dynamic.

        Only announced prefixes covering at least one dynamic /24
        appear in the result (as plotted in Figure 1).
        """
        counts: Dict[ipaddress.IPv4Network, int] = {}
        for prefix in dynamic_24s:
            entry = self.covering(prefix)
            if entry is None:
                continue
            counts[entry[0]] = counts.get(entry[0], 0) + 1
        fractions = {}
        for network, dynamic_count in counts.items():
            total_24s = 2 ** max(0, 24 - network.prefixlen)
            fractions[network] = dynamic_count / total_24s
        return fractions


def dynamic_fraction_summary(
    prefix_map: AnnouncedPrefixMap, dynamic_24s: Iterable[Prefixable]
) -> List[FractionSummary]:
    """Figure 1's per-size distribution ticks (min, median, max)."""
    fractions = prefix_map.dynamic_fractions(dynamic_24s)
    by_size: Dict[int, List[float]] = {}
    for network, fraction in fractions.items():
        by_size.setdefault(network.prefixlen, []).append(fraction)
    summaries = []
    for prefixlen in sorted(by_size):
        values = sorted(by_size[prefixlen])
        summaries.append(
            FractionSummary(
                prefixlen=prefixlen,
                prefixes=len(values),
                minimum=values[0],
                median=statistics.median(values),
                maximum=values[-1],
            )
        )
    return summaries
