"""Hostname term extraction and suffix handling (Section 5.1).

Terms are maximal runs of alphabetical characters ("we use a regular
expression that extracts words consisting of alphabetical characters
from PTR records").  Suffix extraction indexes networks "by hostname
suffix (TLD+1)", with a small built-in public-suffix table so that
``campus.uni.ac.nl`` groups under ``uni.ac.nl`` rather than ``ac.nl``.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import FrozenSet, Iterable, List

from repro.datasets.terms import GENERIC_ROUTER_TERMS

_WORD_RE = re.compile(r"[a-z]+")

#: Multi-label public suffixes the simulated worlds use; real
#: deployments would plug in the full PSL here.
MULTI_LABEL_PUBLIC_SUFFIXES: FrozenSet[str] = frozenset(
    {
        "ac.nl",
        "ac.uk",
        "ac.jp",
        "co.uk",
        "co.jp",
        "com.au",
        "edu.au",
        "or.jp",
        "gov.uk",
    }
)


def extract_terms(hostname: str, *, min_length: int = 1) -> List[str]:
    """Lower-cased alphabetical words in a hostname, in order.

    >>> extract_terms("brians-galaxy-note9.campus.example.edu")
    ['brians', 'galaxy', 'note', 'campus', 'example', 'edu']
    """
    terms = _WORD_RE.findall(hostname.lower())
    if min_length > 1:
        terms = [term for term in terms if len(term) >= min_length]
    return terms


def hostname_suffix(hostname: str, *, extra_levels: int = 1) -> str:
    """The TLD+1 suffix of a hostname (the paper's network index key).

    ``extra_levels`` adds labels beyond the registrable domain, e.g.
    ``extra_levels=2`` keeps ``campus.stateu.edu`` for
    ``brians-mbp.campus.stateu.edu``.

    >>> hostname_suffix("client1.someisp.com")
    'someisp.com'
    >>> hostname_suffix("host.campus.uni.ac.nl")
    'uni.ac.nl'
    """
    labels = hostname.lower().rstrip(".").split(".")
    if len(labels) < 2:
        return hostname.lower().rstrip(".")
    public = 1
    if len(labels) >= 2 and ".".join(labels[-2:]) in MULTI_LABEL_PUBLIC_SUFFIXES:
        public = 2
    keep = min(len(labels), public + extra_levels)
    return ".".join(labels[-keep:])


def is_router_level(hostname: str, *, generic_terms: FrozenSet[str] = GENERIC_ROUTER_TERMS) -> bool:
    """Whether a hostname looks like router/location infrastructure.

    Only the *prefix* part (labels below the suffix) is examined, so a
    network whose suffix happens to contain a generic word (e.g.
    ``dyn.metronet.net``) is not blanket-excluded — the paper excludes
    router-level *records*, not whole networks.
    """
    suffix = hostname_suffix(hostname)
    prefix_part = hostname.lower().rstrip(".")
    if prefix_part.endswith(suffix):
        prefix_part = prefix_part[: -len(suffix)].rstrip(".")
    if not prefix_part:
        return False
    return any(term in generic_terms for term in extract_terms(prefix_part))


def count_terms(hostnames: Iterable[str], *, min_length: int = 3) -> Counter:
    """Occurrences of each term across hostnames (Section 5.1's common
    terms, with the paper's three-character minimum)."""
    counter: Counter = Counter()
    for hostname in hostnames:
        counter.update(set(extract_terms(hostname, min_length=min_length)))
    return counter
