"""The dynamicity heuristic of Section 4.1.

Three steps over a three-month window of daily /24 PTR counts:

1. Discard /24 prefixes never exceeding ``min_daily_addresses`` (10)
   addresses on any day; record the maximum for the rest.
2. For each remaining /24, compute the day-by-day absolute difference
   in address count, as a percentage of the recorded maximum.
3. Label the /24 *dynamic* if the change percentage exceeds X (10%) on
   at least Y (7) days.

The paper validates these thresholds against its campus network and
notes they deliberately produce a lower bound (strict thresholds, high
confidence).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Union

from repro.scan.snapshot import SnapshotSeries

DailyCounts = Mapping[dt.date, Mapping[str, int]]


@dataclass(frozen=True)
class DynamicityThresholds:
    """The X/Y/minimum-size knobs of the heuristic (paper defaults)."""

    min_daily_addresses: int = 10
    change_percent: float = 10.0  # X
    min_change_days: int = 7      # Y

    def __post_init__(self) -> None:
        if self.min_daily_addresses < 1:
            raise ValueError("min_daily_addresses must be at least 1")
        if not 0 < self.change_percent <= 100:
            raise ValueError("change_percent must be in (0, 100]")
        if self.min_change_days < 1:
            raise ValueError("min_change_days must be at least 1")


@dataclass
class PrefixDynamicity:
    """Per-/24 evidence accumulated by the analyzer."""

    prefix: str
    max_daily: int
    change_days: int
    observed_days: int
    is_dynamic: bool


@dataclass
class DynamicityReport:
    """The outcome of one analysis window."""

    thresholds: DynamicityThresholds
    prefixes: Dict[str, PrefixDynamicity] = field(default_factory=dict)
    #: /24s seen at all, including those dropped in step 1.
    total_observed: int = 0

    def dynamic_prefixes(self) -> List[str]:
        return sorted(
            prefix for prefix, info in self.prefixes.items() if info.is_dynamic
        )

    @property
    def dynamic_count(self) -> int:
        return sum(1 for info in self.prefixes.values() if info.is_dynamic)

    def is_dynamic(self, prefix: str) -> bool:
        info = self.prefixes.get(prefix)
        return info.is_dynamic if info else False


class DynamicityAnalyzer:
    """Applies the three-step heuristic to a daily count series."""

    def __init__(self, thresholds: DynamicityThresholds = DynamicityThresholds()):
        self.thresholds = thresholds

    def analyze(self, series: Union[SnapshotSeries, DailyCounts]) -> DynamicityReport:
        """Run the heuristic over daily /24 counts.

        Accepts a :class:`~repro.scan.snapshot.SnapshotSeries` or a
        plain ``{date: {prefix: count}}`` mapping.  Days are processed
        in date order; a /24 absent on a day counts as zero addresses
        (its records disappeared entirely).
        """
        if isinstance(series, SnapshotSeries):
            days = series.days
            counts_for = series.counts_by_slash24
        else:
            days = sorted(series)
            counts_for = lambda day: series[day]  # noqa: E731 - tiny adapter
        if not days:
            raise ValueError("the series holds no days")

        daily: List[Mapping[str, int]] = [counts_for(day) for day in days]
        all_prefixes = set()
        for counts in daily:
            all_prefixes.update(counts)

        report = DynamicityReport(self.thresholds, total_observed=len(all_prefixes))
        minimum = self.thresholds.min_daily_addresses
        for prefix in all_prefixes:
            history = [counts.get(prefix, 0) for counts in daily]
            max_daily = max(history)
            if max_daily <= minimum:
                continue  # step 1: discard small prefixes
            change_days = self._count_change_days(history, max_daily)
            is_dynamic = change_days >= self.thresholds.min_change_days
            report.prefixes[prefix] = PrefixDynamicity(
                prefix=prefix,
                max_daily=max_daily,
                change_days=change_days,
                observed_days=len(history),
                is_dynamic=is_dynamic,
            )
        return report

    def _count_change_days(self, history: List[int], max_daily: int) -> int:
        threshold = self.thresholds.change_percent
        change_days = 0
        for yesterday, today in zip(history, history[1:]):
            change_percent = 100.0 * abs(today - yesterday) / max_daily
            if change_percent > threshold:
                change_days += 1
        return change_days
