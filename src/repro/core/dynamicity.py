"""The dynamicity heuristic of Section 4.1.

Three steps over a three-month window of daily /24 PTR counts:

1. Discard /24 prefixes never exceeding ``min_daily_addresses`` (10)
   addresses on any day; record the maximum for the rest.
2. For each remaining /24, compute the day-by-day absolute difference
   in address count, as a percentage of the recorded maximum.
3. Label the /24 *dynamic* if the change percentage exceeds X (10%) on
   at least Y (7) days.

The paper validates these thresholds against its campus network and
notes they deliberately produce a lower bound (strict thresholds, high
confidence).

Three analyzers share the heuristic:

* :class:`DynamicityAnalyzer` — the batch implementation, rewritten
  over the columnar :class:`~repro.scan.storage.CountMatrix`: two
  sweeps over the count columns (per-prefix maxima, then transition
  counting against the final maxima), no per-day dict materialisation.
* :class:`IncrementalDynamicityAnalyzer` — ingests one day at a time
  for long-running deployments; each day costs O(prefixes) and
  :meth:`~IncrementalDynamicityAnalyzer.report` re-evaluates the
  heuristic without rescanning history (sorted per-prefix delta sets,
  binary-searched with the exact reference predicate).
* :class:`DictReferenceAnalyzer` — the retained row-oriented
  ``{date: {prefix: count}}`` implementation, kept as the oracle the
  property tests compare against and as the benchmark baseline.

All three produce bit-identical :class:`DynamicityReport`\\ s for the
same input (pinned by ``tests/core/test_dynamicity_columnar.py``).
"""

from __future__ import annotations

import datetime as dt
import math
import warnings
from bisect import insort
from dataclasses import dataclass, field
from itertools import pairwise, zip_longest
from typing import Dict, List, Mapping, Optional, Sequence, Union

try:  # Vectorised transition sweep; the stdlib fallback is bit-identical.
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.scan.snapshot import SnapshotSeries
from repro.scan.storage import CountMatrix, PrefixTable

DailyCounts = Mapping[dt.date, Mapping[str, int]]


@dataclass(frozen=True)
class DynamicityThresholds:
    """The X/Y/minimum-size knobs of the heuristic (paper defaults)."""

    min_daily_addresses: int = 10
    change_percent: float = 10.0  # X
    min_change_days: int = 7      # Y

    def __post_init__(self) -> None:
        if self.min_daily_addresses < 1:
            raise ValueError("min_daily_addresses must be at least 1")
        if not 0 < self.change_percent <= 100:
            raise ValueError("change_percent must be in (0, 100]")
        if self.min_change_days < 1:
            raise ValueError("min_change_days must be at least 1")


@dataclass
class PrefixDynamicity:
    """Per-/24 evidence accumulated by the analyzer.

    ``change_days`` counts snapshot-to-snapshot transitions whose
    change exceeds X% (at daily cadence, exactly the paper's "days");
    ``observed_days`` is the calendar span the snapshots cover — for a
    weekly series of 5 snapshots that is 29 days, not 5.
    """

    prefix: str
    max_daily: int
    change_days: int
    observed_days: int
    is_dynamic: bool


@dataclass
class DynamicityReport:
    """The outcome of one analysis window."""

    thresholds: DynamicityThresholds
    prefixes: Dict[str, PrefixDynamicity] = field(default_factory=dict)
    #: /24s seen at all, including those dropped in step 1.
    total_observed: int = 0
    #: Snapshot spacing of the analysed series (1 = daily, 7 = weekly).
    cadence_days: int = 1
    #: The Y threshold actually applied, in snapshot transitions —
    #: ``min_change_days`` rescaled when the cadence is coarser than
    #: daily (see :meth:`DynamicityAnalyzer.analyze`).
    effective_min_change_transitions: int = 7

    def dynamic_prefixes(self) -> List[str]:
        return sorted(
            prefix for prefix, info in self.prefixes.items() if info.is_dynamic
        )

    @property
    def dynamic_count(self) -> int:
        return sum(1 for info in self.prefixes.values() if info.is_dynamic)

    def is_dynamic(self, prefix: str) -> bool:
        info = self.prefixes.get(prefix)
        return info.is_dynamic if info else False


def _effective_min_transitions(
    thresholds: DynamicityThresholds,
    cadence_days: int,
    allow_coarse_cadence: bool,
) -> int:
    """The Y threshold in snapshot transitions for this cadence.

    The paper's thresholds are calibrated for **daily** snapshots: Y
    (``min_change_days``) counts days with >X% change, and each
    snapshot-to-snapshot transition spans exactly one day.  A weekly
    (Rapid7-style) series has 7× fewer transitions per window, so
    judging it against the same Y silently under-detects dynamic
    space.  A cadence coarser than daily therefore raises unless
    ``allow_coarse_cadence=True``, in which case Y is rescaled to
    ``ceil(min_change_days / cadence_days)`` transitions (a
    lower-bound-preserving adjustment) and a ``UserWarning`` records
    the rescaling.
    """
    if cadence_days <= 1:
        return thresholds.min_change_days
    if not allow_coarse_cadence:
        raise ValueError(
            f"series cadence is {cadence_days} days but the Y threshold "
            f"(min_change_days={thresholds.min_change_days}) assumes daily snapshots; "
            "pass allow_coarse_cadence=True to rescale Y to the cadence"
        )
    min_transitions = max(1, math.ceil(thresholds.min_change_days / cadence_days))
    warnings.warn(
        f"analysing a {cadence_days}-day-cadence series: Y threshold "
        f"rescaled from {thresholds.min_change_days} change days to "
        f"{min_transitions} snapshot transition(s)",
        UserWarning,
        stacklevel=3,
    )
    return min_transitions


def _scan_columns(
    prefixes: PrefixTable,
    columns: Sequence,
    thresholds: DynamicityThresholds,
    *,
    cadence_days: int,
    min_transitions: int,
    observed_days: int,
    total_observed: Optional[int] = None,
) -> DynamicityReport:
    """The columnar heuristic core: two sweeps over count columns.

    Sweep one records each prefix's maximum daily count; sweep two
    counts transitions exceeding X% of that maximum.  Columns may be
    ragged (a column is as long as the prefix table was on its day);
    missing cells read as zero, exactly like the reference
    implementation's ``counts.get(prefix, 0)``.

    ``total_observed`` defaults to the number of prefixes with a
    non-zero count in ``columns`` — the right value for a windowed
    scan, where the table may hold prefixes only seen outside the
    window.  Whole-series callers pass ``len(prefixes)`` instead.
    """
    if np is not None:
        # A dense day x prefix grid: short (ragged) columns are
        # zero-padded, the same implicit zero the reference's
        # ``counts.get(prefix, 0)`` reads.  Counts fit uint32, so every
        # value converts to float64 exactly, and NumPy's elementwise
        # ``100.0 * |delta| / max > threshold`` performs the identical
        # IEEE-754 double operations as the reference's scalar
        # expression — vectorisation cannot move a boundary case.
        width = len(prefixes)
        day_count = len(columns)
        grid = np.zeros((day_count, width), dtype=np.int64)
        for index, column in enumerate(columns):
            if len(column):
                grid[index, : len(column)] = column
        maxima = grid.max(axis=0) if day_count else np.zeros(width, dtype=np.int64)
        if total_observed is None:
            total_observed = int(np.count_nonzero(maxima))

        report = DynamicityReport(
            thresholds,
            total_observed=total_observed,
            cadence_days=cadence_days,
            effective_min_change_transitions=min_transitions,
        )
        # step 1: discard small prefixes
        eligible = np.nonzero(maxima > thresholds.min_daily_addresses)[0]
        if not eligible.size:
            return report

        # steps 2 and 3: per-transition percentage change against the
        # eligible prefixes' maxima, counted down the day axis.
        subgrid = grid[:, eligible]
        if day_count > 1:
            deltas = np.abs(np.diff(subgrid, axis=0)).astype(np.float64)
            exceeds = 100.0 * deltas / maxima[eligible] > thresholds.change_percent
            changes = exceeds.sum(axis=0)
        else:
            changes = np.zeros(eligible.size, dtype=np.int64)

        values = prefixes.values
        for position, prefix_id in enumerate(eligible):
            prefix = values[prefix_id]
            change_days = int(changes[position])
            report.prefixes[prefix] = PrefixDynamicity(
                prefix=prefix,
                max_daily=int(maxima[prefix_id]),
                change_days=change_days,
                observed_days=observed_days,
                is_dynamic=change_days >= min_transitions,
            )
        return report

    # Stdlib fallback: transpose once at C speed — zip_longest pads the
    # ragged columns with the same implicit zero — then run the exact
    # reference expression over each eligible prefix's history tuple.
    rows = list(zip_longest(*columns, fillvalue=0)) if columns else []
    maxima_list = list(map(max, rows))
    if total_observed is None:
        total_observed = sum(1 for value in maxima_list if value)

    report = DynamicityReport(
        thresholds,
        total_observed=total_observed,
        cadence_days=cadence_days,
        effective_min_change_transitions=min_transitions,
    )
    minimum = thresholds.min_daily_addresses
    eligible_ids = [
        prefix_id for prefix_id, value in enumerate(maxima_list) if value > minimum
    ]
    if not eligible_ids:
        return report

    threshold = thresholds.change_percent
    values = prefixes.values
    for prefix_id in eligible_ids:
        history = rows[prefix_id]
        max_daily = maxima_list[prefix_id]
        change_days = 0
        for before, after in pairwise(history):
            # Same operands, same order, same exclusive comparison as
            # the reference — the two backends can never diverge.
            if 100.0 * abs(after - before) / max_daily > threshold:
                change_days += 1
        prefix = values[prefix_id]
        report.prefixes[prefix] = PrefixDynamicity(
            prefix=prefix,
            max_daily=max_daily,
            change_days=change_days,
            observed_days=observed_days,
            is_dynamic=change_days >= min_transitions,
        )
    return report


class DynamicityAnalyzer:
    """Applies the three-step heuristic to a daily count series."""

    def __init__(self, thresholds: DynamicityThresholds = DynamicityThresholds()):
        self.thresholds = thresholds

    def analyze(
        self,
        series: Union[SnapshotSeries, DailyCounts],
        *,
        cadence_days: Optional[int] = None,
        allow_coarse_cadence: bool = False,
    ) -> DynamicityReport:
        """Run the heuristic over a /24 count series.

        Accepts a :class:`~repro.scan.snapshot.SnapshotSeries` or a
        plain ``{date: {prefix: count}}`` mapping.  Days are processed
        in date order; a /24 absent on a day counts as zero addresses
        (its records disappeared entirely).

        ``cadence_days`` is taken from the series when not given
        explicitly (mapping inputs must be regularly spaced — mixed
        gaps raise); a cadence coarser than daily raises unless
        ``allow_coarse_cadence=True`` rescales the Y threshold (see
        :func:`_effective_min_transitions`).

        A :class:`~repro.scan.snapshot.SnapshotSeries` is analysed
        straight off its internal :class:`~repro.scan.storage.CountMatrix`
        — no per-day dict copies; a mapping is interned into a
        transient matrix first.
        """
        if isinstance(series, SnapshotSeries):
            days = series.days
            matrix = series.count_matrix()
            if cadence_days is None:
                cadence_days = series.cadence_days
        else:
            days = sorted(series)
            matrix = CountMatrix.from_day_dicts(series[day] for day in days)
            if cadence_days is None:
                cadence_days = self._infer_cadence(days)
        if not days:
            raise ValueError("the series holds no days")
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        min_transitions = _effective_min_transitions(
            self.thresholds, cadence_days, allow_coarse_cadence
        )
        return _scan_columns(
            matrix.prefixes,
            [matrix.column(index) for index in range(matrix.day_count)],
            self.thresholds,
            cadence_days=cadence_days,
            min_transitions=min_transitions,
            observed_days=(len(days) - 1) * cadence_days + 1,
            total_observed=len(matrix.prefixes),
        )

    @staticmethod
    def _infer_cadence(days: Sequence[dt.date]) -> int:
        """The uniform gap between consecutive days of a mapping input.

        The old implementation took the *minimum* gap, so an irregular
        mapping (a missing day in a daily series) was silently analysed
        as if regular — under-counting transitions.  Mixed spacing now
        raises, mirroring ``SnapshotSeries._ingest_day``'s cadence
        validation; callers with genuinely irregular data must fill the
        gaps or pass ``cadence_days`` explicitly.
        """
        if len(days) < 2:
            return 1
        gaps = {(later - earlier).days for earlier, later in zip(days, days[1:])}
        if len(gaps) != 1:
            raise ValueError(
                "mapping input has mixed snapshot spacing (consecutive gaps of "
                f"{sorted(gaps)} days); the heuristic's transition counting "
                "assumes a regular cadence — fill the missing days or pass "
                "cadence_days explicitly"
            )
        return gaps.pop()


class IncrementalDynamicityAnalyzer:
    """One-day-at-a-time dynamicity for long-running deployments.

    :meth:`ingest` folds a day's ``{prefix: count}`` mapping into
    running state — each prefix's maximum and its sorted set of
    snapshot-to-snapshot absolute deltas — at O(prefixes) per day.
    :meth:`report` then re-evaluates the heuristic without rescanning
    history: because ``100.0 * delta / max_daily > X`` is monotone in
    ``delta`` for a fixed maximum, the number of qualifying transitions
    is a binary search over each prefix's sorted deltas, O(prefixes ×
    log days) in total, and exactly equal to the batch analyzer's count
    (it evaluates the identical float predicate at the search pivot).

    ``report(window=k)`` re-evaluates the last ``k`` snapshots only —
    a rolling-window view over the retained columns, again without
    touching older history.

    Equivalence with :class:`DynamicityAnalyzer` over the same days is
    pinned by ``tests/core/test_dynamicity_columnar.py``.
    """

    def __init__(
        self,
        thresholds: DynamicityThresholds = DynamicityThresholds(),
        *,
        cadence_days: int = 1,
        allow_coarse_cadence: bool = False,
    ):
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        self.thresholds = thresholds
        self.cadence_days = cadence_days
        self.allow_coarse_cadence = allow_coarse_cadence
        self._matrix = CountMatrix()
        self._days: List[dt.date] = []
        self._maxima: List[int] = []
        #: Per-prefix sorted absolute day-to-day deltas.
        self._deltas: List[List[int]] = []
        self._previous: Sequence[int] = ()

    @property
    def days(self) -> List[dt.date]:
        return list(self._days)

    def ingest(self, day: dt.date, counts: Mapping[str, int]) -> None:
        """Fold one day's counts in, enforcing order and cadence."""
        if self._days:
            gap = (day - self._days[-1]).days
            if gap <= 0:
                raise ValueError(f"day {day} is not after {self._days[-1]}")
            if gap != self.cadence_days:
                raise ValueError(
                    f"snapshot spacing {gap}d contradicts the declared "
                    f"cadence of {self.cadence_days}d"
                )
        self._matrix.append_day(counts)
        column = self._matrix.column(self._matrix.day_count - 1)
        width = len(self._matrix.prefixes)
        while len(self._maxima) < width:
            self._maxima.append(0)
            self._deltas.append([])

        maxima = self._maxima
        if self._days:
            previous = self._previous
            previous_width = len(previous)
            deltas = self._deltas
            for prefix_id in range(width):
                before = previous[prefix_id] if prefix_id < previous_width else 0
                after = column[prefix_id]
                insort(deltas[prefix_id], abs(after - before))
                if after > maxima[prefix_id]:
                    maxima[prefix_id] = after
        else:
            for prefix_id, count in enumerate(column):
                if count > maxima[prefix_id]:
                    maxima[prefix_id] = count
        self._previous = column
        self._days.append(day)

    def report(self, *, window: Optional[int] = None) -> DynamicityReport:
        """The heuristic's verdict over everything ingested so far.

        ``window`` restricts the evaluation to the most recent
        ``window`` snapshots (a rolling re-evaluation; ``total_observed``
        then counts prefixes seen *within* the window, matching a batch
        run over just those days).
        """
        if not self._days:
            raise ValueError("the series holds no days")
        min_transitions = _effective_min_transitions(
            self.thresholds, self.cadence_days, self.allow_coarse_cadence
        )
        if window is not None:
            if window < 1:
                raise ValueError("window must be at least 1 snapshot")
            first = max(0, self._matrix.day_count - window)
            columns = [
                self._matrix.column(index)
                for index in range(first, self._matrix.day_count)
            ]
            return _scan_columns(
                self._matrix.prefixes,
                columns,
                self.thresholds,
                cadence_days=self.cadence_days,
                min_transitions=min_transitions,
                observed_days=(len(columns) - 1) * self.cadence_days + 1,
            )

        report = DynamicityReport(
            self.thresholds,
            total_observed=len(self._matrix.prefixes),
            cadence_days=self.cadence_days,
            effective_min_change_transitions=min_transitions,
        )
        minimum = self.thresholds.min_daily_addresses
        threshold = self.thresholds.change_percent
        observed_days = (len(self._days) - 1) * self.cadence_days + 1
        values = self._matrix.prefixes.values
        for prefix_id, max_daily in enumerate(self._maxima):
            if max_daily <= minimum:
                continue  # step 1: discard small prefixes
            deltas = self._deltas[prefix_id]
            # First delta whose change percentage exceeds X, by binary
            # search — the predicate is the reference expression, so
            # the split point is exactly where the batch scan flips.
            low, high = 0, len(deltas)
            while low < high:
                mid = (low + high) // 2
                if 100.0 * deltas[mid] / max_daily > threshold:
                    high = mid
                else:
                    low = mid + 1
            change_days = len(deltas) - low
            prefix = values[prefix_id]
            report.prefixes[prefix] = PrefixDynamicity(
                prefix=prefix,
                max_daily=max_daily,
                change_days=change_days,
                observed_days=observed_days,
                is_dynamic=change_days >= min_transitions,
            )
        return report


class DictReferenceAnalyzer:
    """The retained row-oriented reference implementation.

    The pre-columnar analyzer, kept verbatim (modulo the shared cadence
    plumbing) as the oracle for the columnar/incremental equivalence
    property tests and as the baseline the analysis benchmark measures
    the columnar core against.  Not used by the pipeline.
    """

    def __init__(self, thresholds: DynamicityThresholds = DynamicityThresholds()):
        self.thresholds = thresholds

    def analyze(
        self,
        series: Union[SnapshotSeries, DailyCounts],
        *,
        cadence_days: Optional[int] = None,
        allow_coarse_cadence: bool = False,
    ) -> DynamicityReport:
        if isinstance(series, SnapshotSeries):
            days = series.days
            counts_for = series.counts_view
            if cadence_days is None:
                cadence_days = series.cadence_days
        else:
            days = sorted(series)
            counts_for = lambda day: series[day]  # noqa: E731 - tiny adapter
            if cadence_days is None:
                cadence_days = DynamicityAnalyzer._infer_cadence(days)
        if not days:
            raise ValueError("the series holds no days")
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        min_transitions = _effective_min_transitions(
            self.thresholds, cadence_days, allow_coarse_cadence
        )

        daily: List[Mapping[str, int]] = [counts_for(day) for day in days]
        all_prefixes = set()
        for counts in daily:
            all_prefixes.update(counts)

        report = DynamicityReport(
            self.thresholds,
            total_observed=len(all_prefixes),
            cadence_days=cadence_days,
            effective_min_change_transitions=min_transitions,
        )
        minimum = self.thresholds.min_daily_addresses
        observed_days = (len(days) - 1) * cadence_days + 1
        for prefix in all_prefixes:
            history = [counts.get(prefix, 0) for counts in daily]
            max_daily = max(history)
            if max_daily <= minimum:
                continue  # step 1: discard small prefixes
            change_days = self._count_change_days(history, max_daily)
            report.prefixes[prefix] = PrefixDynamicity(
                prefix=prefix,
                max_daily=max_daily,
                change_days=change_days,
                observed_days=observed_days,
                is_dynamic=change_days >= min_transitions,
            )
        return report

    def _count_change_days(self, history: List[int], max_daily: int) -> int:
        threshold = self.thresholds.change_percent
        change_days = 0
        for yesterday, today in zip(history, history[1:]):
            change_percent = 100.0 * abs(today - yesterday) / max_daily
            if change_percent > threshold:
                change_days += 1
        return change_days
