"""The dynamicity heuristic of Section 4.1.

Three steps over a three-month window of daily /24 PTR counts:

1. Discard /24 prefixes never exceeding ``min_daily_addresses`` (10)
   addresses on any day; record the maximum for the rest.
2. For each remaining /24, compute the day-by-day absolute difference
   in address count, as a percentage of the recorded maximum.
3. Label the /24 *dynamic* if the change percentage exceeds X (10%) on
   at least Y (7) days.

The paper validates these thresholds against its campus network and
notes they deliberately produce a lower bound (strict thresholds, high
confidence).
"""

from __future__ import annotations

import datetime as dt
import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.scan.snapshot import SnapshotSeries

DailyCounts = Mapping[dt.date, Mapping[str, int]]


@dataclass(frozen=True)
class DynamicityThresholds:
    """The X/Y/minimum-size knobs of the heuristic (paper defaults)."""

    min_daily_addresses: int = 10
    change_percent: float = 10.0  # X
    min_change_days: int = 7      # Y

    def __post_init__(self) -> None:
        if self.min_daily_addresses < 1:
            raise ValueError("min_daily_addresses must be at least 1")
        if not 0 < self.change_percent <= 100:
            raise ValueError("change_percent must be in (0, 100]")
        if self.min_change_days < 1:
            raise ValueError("min_change_days must be at least 1")


@dataclass
class PrefixDynamicity:
    """Per-/24 evidence accumulated by the analyzer.

    ``change_days`` counts snapshot-to-snapshot transitions whose
    change exceeds X% (at daily cadence, exactly the paper's "days");
    ``observed_days`` is the calendar span the snapshots cover — for a
    weekly series of 5 snapshots that is 29 days, not 5.
    """

    prefix: str
    max_daily: int
    change_days: int
    observed_days: int
    is_dynamic: bool


@dataclass
class DynamicityReport:
    """The outcome of one analysis window."""

    thresholds: DynamicityThresholds
    prefixes: Dict[str, PrefixDynamicity] = field(default_factory=dict)
    #: /24s seen at all, including those dropped in step 1.
    total_observed: int = 0
    #: Snapshot spacing of the analysed series (1 = daily, 7 = weekly).
    cadence_days: int = 1
    #: The Y threshold actually applied, in snapshot transitions —
    #: ``min_change_days`` rescaled when the cadence is coarser than
    #: daily (see :meth:`DynamicityAnalyzer.analyze`).
    effective_min_change_transitions: int = 7

    def dynamic_prefixes(self) -> List[str]:
        return sorted(
            prefix for prefix, info in self.prefixes.items() if info.is_dynamic
        )

    @property
    def dynamic_count(self) -> int:
        return sum(1 for info in self.prefixes.values() if info.is_dynamic)

    def is_dynamic(self, prefix: str) -> bool:
        info = self.prefixes.get(prefix)
        return info.is_dynamic if info else False


class DynamicityAnalyzer:
    """Applies the three-step heuristic to a daily count series."""

    def __init__(self, thresholds: DynamicityThresholds = DynamicityThresholds()):
        self.thresholds = thresholds

    def analyze(
        self,
        series: Union[SnapshotSeries, DailyCounts],
        *,
        cadence_days: Optional[int] = None,
        allow_coarse_cadence: bool = False,
    ) -> DynamicityReport:
        """Run the heuristic over a /24 count series.

        Accepts a :class:`~repro.scan.snapshot.SnapshotSeries` or a
        plain ``{date: {prefix: count}}`` mapping.  Days are processed
        in date order; a /24 absent on a day counts as zero addresses
        (its records disappeared entirely).

        The paper's thresholds are calibrated for **daily** snapshots:
        Y (``min_change_days``) counts days with >X% change, and each
        snapshot-to-snapshot transition spans exactly one day.  A
        weekly (Rapid7-style) series has 7× fewer transitions per
        window, so judging it against the same Y silently under-detects
        dynamic space.  ``cadence_days`` is taken from the series when
        not given explicitly; a cadence coarser than daily raises
        unless ``allow_coarse_cadence=True``, in which case Y is
        rescaled to ``ceil(min_change_days / cadence_days)`` snapshot
        transitions (a lower-bound-preserving adjustment) and a
        ``UserWarning`` records the rescaling.
        """
        if isinstance(series, SnapshotSeries):
            days = series.days
            counts_for = series.counts_by_slash24
            if cadence_days is None:
                cadence_days = series.cadence_days
        else:
            days = sorted(series)
            counts_for = lambda day: series[day]  # noqa: E731 - tiny adapter
            if cadence_days is None:
                cadence_days = self._infer_cadence(days)
        if not days:
            raise ValueError("the series holds no days")
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")

        min_transitions = self.thresholds.min_change_days
        if cadence_days > 1:
            if not allow_coarse_cadence:
                raise ValueError(
                    f"series cadence is {cadence_days} days but the Y threshold "
                    f"(min_change_days={min_transitions}) assumes daily snapshots; "
                    "pass allow_coarse_cadence=True to rescale Y to the cadence"
                )
            min_transitions = max(
                1, math.ceil(self.thresholds.min_change_days / cadence_days)
            )
            warnings.warn(
                f"analysing a {cadence_days}-day-cadence series: Y threshold "
                f"rescaled from {self.thresholds.min_change_days} change days to "
                f"{min_transitions} snapshot transition(s)",
                UserWarning,
                stacklevel=2,
            )

        daily: List[Mapping[str, int]] = [counts_for(day) for day in days]
        all_prefixes = set()
        for counts in daily:
            all_prefixes.update(counts)

        report = DynamicityReport(
            self.thresholds,
            total_observed=len(all_prefixes),
            cadence_days=cadence_days,
            effective_min_change_transitions=min_transitions,
        )
        minimum = self.thresholds.min_daily_addresses
        observed_days = (len(days) - 1) * cadence_days + 1
        for prefix in all_prefixes:
            history = [counts.get(prefix, 0) for counts in daily]
            max_daily = max(history)
            if max_daily <= minimum:
                continue  # step 1: discard small prefixes
            change_days = self._count_change_days(history, max_daily)
            is_dynamic = change_days >= min_transitions
            report.prefixes[prefix] = PrefixDynamicity(
                prefix=prefix,
                max_daily=max_daily,
                change_days=change_days,
                observed_days=observed_days,
                is_dynamic=is_dynamic,
            )
        return report

    @staticmethod
    def _infer_cadence(days: List[dt.date]) -> int:
        """The smallest gap between consecutive days of a mapping input."""
        if len(days) < 2:
            return 1
        return min((later - earlier).days for earlier, later in zip(days, days[1:]))

    def _count_change_days(self, history: List[int], max_daily: int) -> int:
        threshold = self.thresholds.change_percent
        change_days = 0
        for yesterday, today in zip(history, history[1:]):
            change_percent = 100.0 * abs(today - yesterday) / max_daily
            if change_percent > threshold:
                change_days += 1
        return change_days
