"""Tracking named client devices over time (Section 7.1, Figure 8).

From reverse-DNS observations alone — "anyone with the capability to
do frequent PTR lookups can capture the same patterns" — the tracker
selects hostnames containing a given name and reconstructs each
device's presence timeline, keyed by the hostname's first label (the
device identity: ``brians-mbp``, ``brians-galaxy-note9``, ...).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import date_of
from repro.scan.observations import RdnsObservation


@dataclass
class TrackedDevice:
    """One hostname label's observation history."""

    label: str
    #: (timestamp, address) pairs for every successful observation.
    sightings: List[Tuple[int, object]] = field(default_factory=list)

    @property
    def first_seen(self) -> int:
        return self.sightings[0][0]

    @property
    def last_seen(self) -> int:
        return self.sightings[-1][0]

    def addresses(self) -> List[object]:
        """Distinct addresses, in first-seen order (Figure 8's colours)."""
        seen: Set[object] = set()
        ordered = []
        for _, address in self.sightings:
            if address not in seen:
                seen.add(address)
                ordered.append(address)
        return ordered

    def days_seen(self) -> List[dt.date]:
        return sorted({date_of(timestamp) for timestamp, _ in self.sightings})

    def seen_on(self, day: dt.date) -> bool:
        return day in {date_of(timestamp) for timestamp, _ in self.sightings}

    def presence_by_day(self) -> Dict[dt.date, List[Tuple[int, object]]]:
        by_day: Dict[dt.date, List[Tuple[int, object]]] = {}
        for timestamp, address in self.sightings:
            by_day.setdefault(date_of(timestamp), []).append((timestamp, address))
        return by_day


class DeviceTracker:
    """Follows devices whose hostnames contain a given name.

    Only successful observations carry hostnames, but failed lookups
    are remembered per (network, day): under fault injection a blank
    day may mean "device absent" *or* "the measurement failed", and
    :meth:`presence_matrix` can surface the difference.
    """

    def __init__(self, observations: Iterable[RdnsObservation]):
        self._observations = []
        self._error_days: Dict[str, Set[dt.date]] = {}
        for obs in observations:
            if obs.ok:
                self._observations.append(obs)
            elif obs.status is not ResolutionStatus.NXDOMAIN:
                # NXDOMAIN is an answer (the record is gone), not a
                # measurement failure; everything else is a blind spot.
                self._error_days.setdefault(obs.network, set()).add(date_of(obs.at))

    def error_days(self, network: Optional[str] = None) -> Set[dt.date]:
        """Days on which at least one lookup failed (per network)."""
        if network is not None:
            return set(self._error_days.get(network, set()))
        merged: Set[dt.date] = set()
        for days in self._error_days.values():
            merged |= days
        return merged

    def track(self, name: str, *, network: Optional[str] = None) -> Dict[str, TrackedDevice]:
        """Tracked devices for one given name, keyed by hostname label.

        The paper deliberately limits itself to a single (common) name;
        the API takes one name per call for the same reason.
        """
        name = name.lower()
        devices: Dict[str, TrackedDevice] = {}
        for observation in self._observations:
            if network is not None and observation.network != network:
                continue
            label = observation.hostname.split(".")[0].lower()
            if name not in label:
                continue
            device = devices.get(label)
            if device is None:
                device = devices[label] = TrackedDevice(label)
            device.sightings.append((observation.at, observation.address))
        for device in devices.values():
            device.sightings.sort()
        return devices

    def presence_matrix(
        self,
        name: str,
        start: dt.date,
        days: int,
        *,
        network: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
        mark_unknown: bool = False,
    ) -> Dict[str, List[Optional[bool]]]:
        """Label-by-day presence booleans — the grid of Figure 8.

        With ``mark_unknown``, a day on which the device was *not* seen
        but lookups in its network failed is reported as ``None``
        instead of ``False``: the tracker cannot distinguish "device
        away" from "measurement blinded" on such days.
        """
        devices = self.track(name, network=network)
        if labels is None:
            labels = sorted(devices)
        unknown_days = self.error_days(network) if mark_unknown else set()
        matrix: Dict[str, List[Optional[bool]]] = {}
        span = [start + dt.timedelta(days=offset) for offset in range(days)]
        for label in labels:
            device = devices.get(label)
            seen_days = set(device.days_seen()) if device else set()
            matrix[label] = [
                True if day in seen_days else (None if day in unknown_days else False)
                for day in span
            ]
        return matrix

    def new_device_appearances(
        self, name: str, *, network: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        """(label, first-seen timestamp) sorted by appearance time.

        This is what surfaces the Cyber-Monday Galaxy Note 9: a label
        whose first sighting falls mid-measurement.
        """
        devices = self.track(name, network=network)
        return sorted(
            ((label, device.first_seen) for label, device in devices.items()),
            key=lambda pair: pair[1],
        )

    def cross_network_sightings(self, name: str) -> Dict[str, Dict[str, TrackedDevice]]:
        """Hostname labels observed in more than one network.

        The introduction's escalation — "might even be able to track
        clients across multiple networks" — rests on exactly this: a
        distinctive device name (``brians-galaxy-note9``) resurfacing
        under a different suffix when its owner moves between networks.
        Returns ``{label: {network: TrackedDevice}}`` for labels seen in
        at least two networks.
        """
        name = name.lower()
        per_network: Dict[str, Dict[str, TrackedDevice]] = {}
        for observation in self._observations:
            label = observation.hostname.split(".")[0].lower()
            if name not in label:
                continue
            networks = per_network.setdefault(label, {})
            device = networks.get(observation.network)
            if device is None:
                device = networks[observation.network] = TrackedDevice(label)
            device.sightings.append((observation.at, observation.address))
        result = {}
        for label, networks in per_network.items():
            if len(networks) >= 2:
                for device in networks.values():
                    device.sightings.sort()
                result[label] = networks
        return result
