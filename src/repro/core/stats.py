"""Statistical support for the analyses.

The paper reports point estimates ("in about 9 of 10 cases...").  For a
reproduction it is useful to know how firm such numbers are at simulator
scale, so this module adds:

* bootstrap confidence intervals for arbitrary statistics of the
  lingering-time sample (:func:`bootstrap_ci`);
* a Wilson interval for proportions such as *fraction within 60
  minutes* (:func:`proportion_ci`);
* a two-sample Kolmogorov-Smirnov comparison of per-network lingering
  distributions (:func:`compare_networks`), quantifying Figure 7b's
  visual separation between e.g. the long-lease academic and the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.core.timing import LingeringAnalysis


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}"


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap CI for ``statistic`` over ``sample``."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray(list(sample), dtype=float)
    if values.size == 0:
        raise ValueError("empty sample")
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    for index in range(resamples):
        estimates[index] = statistic(rng.choice(values, size=values.size, replace=True))
    alpha = (1 - confidence) / 2
    low, high = np.quantile(estimates, [alpha, 1 - alpha])
    return Interval(float(statistic(values)), float(low), float(high), confidence)


def proportion_ci(successes: int, total: int, *, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a proportion."""
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    z = float(sps.norm.ppf(1 - (1 - confidence) / 2))
    p = successes / total
    denominator = 1 + z**2 / total
    center = (p + z**2 / (2 * total)) / denominator
    margin = z * np.sqrt(p * (1 - p) / total + z**2 / (4 * total**2)) / denominator
    return Interval(p, max(0.0, center - margin), min(1.0, center + margin), confidence)


@dataclass(frozen=True)
class KsComparison:
    """A two-sample KS comparison of lingering distributions."""

    network_a: str
    network_b: str
    statistic: float
    p_value: float

    def distinguishable(self, alpha: float = 0.01) -> bool:
        """Whether an outside observer can tell the networks apart."""
        return self.p_value < alpha


def compare_networks(
    analysis: LingeringAnalysis, network_a: str, network_b: str
) -> KsComparison:
    """KS-compare two networks' lingering-time distributions."""
    sample_a = analysis.by_network.get(network_a, [])
    sample_b = analysis.by_network.get(network_b, [])
    if not sample_a or not sample_b:
        raise ValueError("both networks need lingering data")
    result = sps.ks_2samp(sample_a, sample_b)
    return KsComparison(network_a, network_b, float(result.statistic), float(result.pvalue))


def lingering_summary(
    analysis: LingeringAnalysis,
    *,
    within_minutes: float = 60.0,
    confidence: float = 0.95,
    network: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Interval]:
    """The headline numbers with uncertainty attached.

    Returns intervals for the median lingering time and for the
    fraction of records reverting within ``within_minutes``.
    """
    values = analysis.by_network.get(network, []) if network else analysis.minutes
    if not values:
        raise ValueError("no lingering data")
    within = sum(1 for value in values if value <= within_minutes)
    return {
        "median_minutes": bootstrap_ci(values, np.median, confidence=confidence, seed=seed),
        f"fraction_within_{int(within_minutes)}m": proportion_ci(
            within, len(values), confidence=confidence
        ),
    }
