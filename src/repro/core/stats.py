"""Statistical support for the analyses.

The paper reports point estimates ("in about 9 of 10 cases...").  For a
reproduction it is useful to know how firm such numbers are at simulator
scale, so this module adds:

* bootstrap confidence intervals for arbitrary statistics of the
  lingering-time sample (:func:`bootstrap_ci`);
* a Wilson interval for proportions such as *fraction within 60
  minutes* (:func:`proportion_ci`);
* a two-sample Kolmogorov-Smirnov comparison of per-network lingering
  distributions (:func:`compare_networks`), quantifying Figure 7b's
  visual separation between e.g. the long-lease academic and the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.core.timing import LingeringAnalysis


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval.

    ``degenerate`` flags intervals the data could not support: an
    empty sample (NaN estimate, vacuous bounds) or a single-element
    sample (zero-width interval).  Callers that previously had to
    guard against ``ValueError`` on thin fault-injected samples can
    now branch on the flag instead.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    degenerate: bool = False

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= value <= self.high

    def __str__(self) -> str:
        suffix = " (degenerate)" if self.degenerate else ""
        return (
            f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"
            f" @ {self.confidence:.0%}{suffix}"
        )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap CI for ``statistic`` over ``sample``.

    Empty and single-element samples yield a *degenerate* interval
    (NaN estimate, or a zero-width interval at the lone value) rather
    than raising: a harsh fault profile can legitimately shrink a
    per-network lingering sample to nothing, and the summary tables
    should render that as "no data", not crash.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    values = np.asarray(list(sample), dtype=float)
    if values.size == 0:
        nan = float("nan")
        return Interval(nan, nan, nan, confidence, degenerate=True)
    if values.size == 1:
        only = float(values[0])
        return Interval(only, only, only, confidence, degenerate=True)
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    for index in range(resamples):
        estimates[index] = statistic(rng.choice(values, size=values.size, replace=True))
    alpha = (1 - confidence) / 2
    low, high = np.quantile(estimates, [alpha, 1 - alpha])
    return Interval(float(statistic(values)), float(low), float(high), confidence)


def proportion_ci(successes: int, total: int, *, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a proportion.

    ``total == 0`` yields the vacuous degenerate interval (NaN
    estimate, bounds [0, 1]): with no trials, every proportion is
    consistent with the data.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        if successes != 0:
            raise ValueError("successes must be within [0, total]")
        return Interval(float("nan"), 0.0, 1.0, confidence, degenerate=True)
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    z = float(sps.norm.ppf(1 - (1 - confidence) / 2))
    p = successes / total
    denominator = 1 + z**2 / total
    center = (p + z**2 / (2 * total)) / denominator
    margin = z * np.sqrt(p * (1 - p) / total + z**2 / (4 * total**2)) / denominator
    return Interval(p, max(0.0, center - margin), min(1.0, center + margin), confidence)


@dataclass(frozen=True)
class KsComparison:
    """A two-sample KS comparison of lingering distributions."""

    network_a: str
    network_b: str
    statistic: float
    p_value: float

    def distinguishable(self, alpha: float = 0.01) -> bool:
        """Whether an outside observer can tell the networks apart."""
        return self.p_value < alpha


def compare_networks(
    analysis: LingeringAnalysis, network_a: str, network_b: str
) -> KsComparison:
    """KS-compare two networks' lingering-time distributions."""
    sample_a = analysis.by_network.get(network_a, [])
    sample_b = analysis.by_network.get(network_b, [])
    if not sample_a or not sample_b:
        raise ValueError("both networks need lingering data")
    result = sps.ks_2samp(sample_a, sample_b)
    return KsComparison(network_a, network_b, float(result.statistic), float(result.pvalue))


def lingering_summary(
    analysis: LingeringAnalysis,
    *,
    within_minutes: float = 60.0,
    confidence: float = 0.95,
    network: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Interval]:
    """The headline numbers with uncertainty attached.

    Returns intervals for the median lingering time and for the
    fraction of records reverting within ``within_minutes``.  An empty
    analysis (no usable groups — e.g. under a harsh fault profile)
    yields *degenerate* intervals (flagged, NaN estimates) instead of
    raising, so report code renders "no data" rather than crashing.
    """
    values = analysis.by_network.get(network, []) if network else analysis.minutes
    within = sum(1 for value in values if value <= within_minutes)
    return {
        "median_minutes": bootstrap_ci(values, np.median, confidence=confidence, seed=seed),
        f"fraction_within_{int(within_minutes)}m": proportion_ci(
            within, len(values), confidence=confidence
        ),
    }
