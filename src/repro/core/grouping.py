"""Activity groups over supplemental measurement data (Section 6.1).

Measurement data points are merged by IP address and five-minute
truncated timestamp; runs of ICMP reachability become *groups* (one
address, one activity period).  Each group is then classified down the
funnel of Table 5:

* **successful responses** — the group has usable rDNS lookups for
  phase 1 (client joined: the PTR observed present) and phase 3
  (client left: post-departure lookups that are clean NOERROR/NXDOMAIN
  outcomes, no server failures or timeouts);
* **PTR reverted** — the post-departure lookups show the record
  removed (NXDOMAIN) or changed back (different hostname);
* **reliable timing alignment** — the client's departure was bracketed
  by closely spaced ICMP probes, so the last-seen time is sharp.  When
  the back-off had already grown past the five-minute phase, departure
  detection is sloppy; the paper filters these out (about 1 in 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import HOUR, MINUTE
from repro.scan.campaign import SupplementalDataset
from repro.scan.observations import RdnsObservation

DEFAULT_GAP_THRESHOLD = 70 * MINUTE
DEFAULT_POST_WINDOW = 26 * HOUR
#: Departure is "sharp" when the bracketing ICMP samples sit at most
#: this far apart.  The hourly sweep plus the reactive tail typically
#: keeps spacing near 30 minutes; departures bracketed only by
#: hour-spaced samples are the sloppy quarter the paper drops.
DEFAULT_RELIABLE_GAP = 30 * MINUTE


@dataclass
class ActivityGroup:
    """One client activity period at one address."""

    group_id: int
    address: object
    network: str
    icmp_times: List[int]
    rdns: List[RdnsObservation] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.icmp_times[0]

    @property
    def end(self) -> int:
        """Timestamp of the last ICMP sample (client last seen)."""
        return self.icmp_times[-1]

    # -- phase-level views ---------------------------------------------------

    def phase1_hostname(self) -> Optional[str]:
        """The PTR value observed while the client was present."""
        for observation in self.rdns:
            if self.start - 5 * MINUTE <= observation.at <= self.end and observation.ok:
                return observation.hostname
        return None

    def post_departure(self) -> List[RdnsObservation]:
        return [obs for obs in self.rdns if obs.at > self.end]

    # -- funnel classification ---------------------------------------------------

    @property
    def successful(self) -> bool:
        hostname = self.phase1_hostname()
        if hostname is None:
            return False
        post = self.post_departure()
        if not post:
            return False
        for observation in post:
            if observation.status in (
                ResolutionStatus.SERVFAIL,
                ResolutionStatus.TIMEOUT,
                ResolutionStatus.REFUSED,
            ):
                # A failed lookup leaves the removal moment uncertain:
                # the record may have vanished inside the blind spot, so
                # the group cannot count as a clean success (Section 6.2).
                return False
            if observation.status is ResolutionStatus.NXDOMAIN:
                return True  # clean sequence up to the removal signal
        return True

    @property
    def reverted(self) -> bool:
        """The PTR was removed or changed after the client left."""
        hostname = self.phase1_hostname()
        if hostname is None:
            return False
        for observation in self.post_departure():
            if observation.status is ResolutionStatus.NXDOMAIN:
                return True
            if observation.ok and observation.hostname != hostname:
                return True
        return False

    def removal_time(self) -> Optional[int]:
        """When the record was first observed gone (or changed)."""
        hostname = self.phase1_hostname()
        for observation in self.post_departure():
            if observation.status is ResolutionStatus.NXDOMAIN:
                return observation.at
            if observation.ok and hostname is not None and observation.hostname != hostname:
                return observation.at
        return None

    def icmp_sampling_gap_at_end(self, default: int = HOUR) -> int:
        """Spacing of the ICMP samples bracketing the departure."""
        if len(self.icmp_times) < 2:
            return default
        return self.icmp_times[-1] - self.icmp_times[-2]

    def reliable(self, max_gap: int = DEFAULT_RELIABLE_GAP) -> bool:
        return self.icmp_sampling_gap_at_end() <= max_gap

    def lingering_seconds(self) -> Optional[int]:
        """Seconds between last ICMP sample and observed PTR removal."""
        removal = self.removal_time()
        if removal is None:
            return None
        return removal - self.end


@dataclass
class GroupFunnel:
    """The Table 5 breakdown."""

    all_groups: int
    successful: int
    reverted: int
    reliable: int

    def rows(self) -> List[Tuple[str, int, float]]:
        """(label, count, fraction-of-parent) rows, Table 5 layout."""

        def fraction(part: int, whole: int) -> float:
            return 100.0 * part / whole if whole else 0.0

        return [
            ("All groups", self.all_groups, 100.0),
            ("Successful responses", self.successful, fraction(self.successful, self.all_groups)),
            ("PTR reverted", self.reverted, fraction(self.reverted, self.successful)),
            ("Reliable timing alignment", self.reliable, fraction(self.reliable, self.reverted)),
        ]


class GroupBuilder:
    """Builds and classifies activity groups from a supplemental dataset."""

    def __init__(
        self,
        *,
        gap_threshold: int = DEFAULT_GAP_THRESHOLD,
        post_window: int = DEFAULT_POST_WINDOW,
        reliable_gap: int = DEFAULT_RELIABLE_GAP,
    ):
        if gap_threshold <= 0 or post_window <= 0:
            raise ValueError("thresholds must be positive")
        self.gap_threshold = gap_threshold
        self.post_window = post_window
        self.reliable_gap = reliable_gap

    def build(self, dataset: SupplementalDataset) -> List[ActivityGroup]:
        """Group the dataset's observations by address and activity run."""
        icmp_by_address: Dict[object, List[int]] = {}
        network_of: Dict[object, str] = {}
        for observation in dataset.icmp:
            icmp_by_address.setdefault(observation.address, []).append(observation.truncated_at)
            network_of[observation.address] = observation.network
        rdns_by_address: Dict[object, List[RdnsObservation]] = {}
        for observation in dataset.rdns:
            rdns_by_address.setdefault(observation.address, []).append(observation)

        groups: List[ActivityGroup] = []
        group_id = 0
        for address in sorted(icmp_by_address, key=int):
            times = sorted(set(icmp_by_address[address]))
            lookups = sorted(rdns_by_address.get(address, []), key=lambda o: o.at)
            for run in self._split_runs(times):
                group = ActivityGroup(
                    group_id=group_id,
                    address=address,
                    network=network_of[address],
                    icmp_times=run,
                )
                group_id += 1
                window_start = run[0] - 30 * MINUTE
                window_end = run[-1] + self.post_window
                group.rdns = [
                    obs for obs in lookups if window_start <= obs.at <= window_end
                ]
                groups.append(group)
        # rDNS windows of adjacent groups must not overlap: clamp each
        # group's window at the next group's start.
        self._clamp_windows(groups)
        return groups

    def _split_runs(self, times: List[int]) -> List[List[int]]:
        runs: List[List[int]] = []
        current: List[int] = []
        for timestamp in times:
            if current and timestamp - current[-1] > self.gap_threshold:
                runs.append(current)
                current = []
            current.append(timestamp)
        if current:
            runs.append(current)
        return runs

    def _clamp_windows(self, groups: List[ActivityGroup]) -> None:
        by_address: Dict[object, List[ActivityGroup]] = {}
        for group in groups:
            by_address.setdefault(group.address, []).append(group)
        for sequence in by_address.values():
            sequence.sort(key=lambda group: group.start)
            for current, following in zip(sequence, sequence[1:]):
                cutoff = following.start
                current.rdns = [obs for obs in current.rdns if obs.at < cutoff]

    def funnel(self, groups: List[ActivityGroup]) -> GroupFunnel:
        """Classify groups down the Table 5 funnel."""
        successful = [group for group in groups if group.successful]
        reverted = [group for group in successful if group.reverted]
        reliable = [group for group in reverted if group.reliable(self.reliable_gap)]
        return GroupFunnel(
            all_groups=len(groups),
            successful=len(successful),
            reverted=len(reverted),
            reliable=len(reliable),
        )

    def usable(self, groups: List[ActivityGroup]) -> List[ActivityGroup]:
        """Groups that survive the whole funnel (419,453 in the paper)."""
        return [
            group
            for group in groups
            if group.successful and group.reverted and group.reliable(self.reliable_gap)
        ]
