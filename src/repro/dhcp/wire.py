"""RFC 2131/2132 wire format for DHCP messages.

The simulation exchanges :class:`~repro.dhcp.messages.DhcpMessage`
objects directly, but a credible DHCP implementation speaks the wire
format: the fixed 236-octet BOOTP header, the magic cookie, and TLV
options.  This codec covers the options the reproduction models —
including the identity-carrying Host Name (12) and Client FQDN (81) —
and round-trips through :func:`encode` / :func:`decode`.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Optional, Tuple

from repro.dhcp.errors import DhcpError
from repro.dhcp.messages import DhcpMessage, MessageType
from repro.dhcp.options import ClientFqdn, DhcpOptionCode, OptionSet

MAGIC_COOKIE = b"\x63\x82\x53\x63"

_OP_REQUEST = 1
_OP_REPLY = 2
_HTYPE_ETHERNET = 1

_REPLY_TYPES = frozenset({MessageType.OFFER, MessageType.ACK, MessageType.NAK})

_PAD = 0
_END = 255


class DhcpWireError(DhcpError, ValueError):
    """A DHCP packet could not be encoded or decoded."""


def _client_id_to_chaddr(client_id: str) -> bytes:
    """Render a client id as a 16-octet chaddr field.

    MAC-style ids ("aa:bb:cc:dd:ee:ff") become their 6 octets; anything
    else is carried as truncated/padded UTF-8 (the simulation uses
    readable ids).
    """
    parts = client_id.split(":")
    if len(parts) == 6 and all(len(part) == 2 for part in parts):
        try:
            raw = bytes(int(part, 16) for part in parts)
            return raw.ljust(16, b"\x00")
        except ValueError:
            pass
    raw = client_id.encode("utf-8")[:16]
    return raw.ljust(16, b"\x00")


def encode(message: DhcpMessage, *, transaction_id: int = 0) -> bytes:
    """Encode a message to RFC 2131 wire format."""
    op = _OP_REPLY if message.message_type in _REPLY_TYPES else _OP_REQUEST
    yiaddr = int(message.your_address) if message.your_address is not None else 0
    header = struct.pack(
        "!BBBBIHHIIII16s64s128s",
        op,
        _HTYPE_ETHERNET,
        6,              # hlen
        0,              # hops
        transaction_id,
        0,              # secs
        0,              # flags
        0,              # ciaddr
        yiaddr,
        0,              # siaddr
        0,              # giaddr
        _client_id_to_chaddr(message.client_id),
        b"",            # sname
        b"",            # file
    )
    out = bytearray(header)
    out += MAGIC_COOKIE
    _append_option(out, DhcpOptionCode.MESSAGE_TYPE, bytes([int(message.message_type)]))
    # The client id travels as option 61 so decode() can recover it
    # even for non-MAC ids.
    _append_option(out, DhcpOptionCode.CLIENT_IDENTIFIER, message.client_id.encode("utf-8"))
    for code in message.options:
        if code in (DhcpOptionCode.MESSAGE_TYPE, DhcpOptionCode.CLIENT_IDENTIFIER):
            continue
        _append_option(out, code, _encode_option_value(code, message.options.get(code)))
    if message.server_id is not None:
        if DhcpOptionCode.SERVER_IDENTIFIER not in message.options:
            _append_option(
                out, DhcpOptionCode.SERVER_IDENTIFIER, message.server_id.encode("utf-8")
            )
    out.append(_END)
    return bytes(out)


def _append_option(out: bytearray, code: DhcpOptionCode, value: bytes) -> None:
    if len(value) > 255:
        raise DhcpWireError(f"option {code.name} value longer than 255 octets")
    out.append(int(code))
    out.append(len(value))
    out += value


def _encode_option_value(code: DhcpOptionCode, value) -> bytes:
    if code in (DhcpOptionCode.HOST_NAME, DhcpOptionCode.DOMAIN_NAME, DhcpOptionCode.VENDOR_CLASS):
        return str(value).encode("utf-8")
    if code == DhcpOptionCode.SERVER_IDENTIFIER:
        return str(value).encode("utf-8")
    if code in (DhcpOptionCode.REQUESTED_IP, DhcpOptionCode.ROUTER, DhcpOptionCode.SUBNET_MASK):
        return ipaddress.IPv4Address(value).packed
    if code == DhcpOptionCode.LEASE_TIME:
        return struct.pack("!I", int(value))
    if code == DhcpOptionCode.CLIENT_FQDN:
        fqdn: ClientFqdn = value
        flags = 0
        if fqdn.server_updates:
            flags |= 0x01  # S
        if fqdn.no_server_update:
            flags |= 0x08  # N
        # RCODE1/RCODE2 are deprecated and sent as zero.
        return bytes([flags, 0, 0]) + fqdn.fqdn.encode("utf-8")
    if code == DhcpOptionCode.PARAMETER_REQUEST_LIST:
        return bytes(int(c) for c in value)
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")


def decode(wire: bytes) -> Tuple[DhcpMessage, int]:
    """Decode a packet; returns (message, transaction_id)."""
    fixed = struct.calcsize("!BBBBIHHIIII16s64s128s")
    if len(wire) < fixed + 4:
        raise DhcpWireError("packet shorter than the fixed BOOTP header")
    (
        op, htype, hlen, hops, transaction_id, secs, flags,
        ciaddr, yiaddr, siaddr, giaddr, chaddr, sname, file_,
    ) = struct.unpack_from("!BBBBIHHIIII16s64s128s", wire, 0)
    if wire[fixed : fixed + 4] != MAGIC_COOKIE:
        raise DhcpWireError("missing DHCP magic cookie")

    options = OptionSet()
    message_type: Optional[MessageType] = None
    client_id: Optional[str] = None
    server_id: Optional[str] = None
    position = fixed + 4
    while position < len(wire):
        code = wire[position]
        position += 1
        if code == _PAD:
            continue
        if code == _END:
            break
        if position >= len(wire):
            raise DhcpWireError("truncated option header")
        length = wire[position]
        position += 1
        if position + length > len(wire):
            raise DhcpWireError("option value runs past end of packet")
        value = wire[position : position + length]
        position += length
        try:
            option_code = DhcpOptionCode(code)
        except ValueError:
            continue  # unknown options are skipped, per robustness rule
        if option_code == DhcpOptionCode.MESSAGE_TYPE:
            if length != 1:
                raise DhcpWireError("message-type option must be 1 octet")
            message_type = MessageType(value[0])
        elif option_code == DhcpOptionCode.CLIENT_IDENTIFIER:
            client_id = value.decode("utf-8", "replace")
        elif option_code == DhcpOptionCode.SERVER_IDENTIFIER:
            server_id = value.decode("utf-8", "replace")
            options.set(option_code, server_id)
        else:
            options.set(option_code, _decode_option_value(option_code, value))
    if message_type is None:
        raise DhcpWireError("packet carries no message-type option")
    if client_id is None:
        client_id = chaddr.rstrip(b"\x00").decode("utf-8", "replace")

    your_address = ipaddress.IPv4Address(yiaddr) if yiaddr else None
    message = DhcpMessage(
        message_type=message_type,
        client_id=client_id,
        options=options,
        your_address=your_address,
        server_id=server_id,
    )
    return message, transaction_id


def _decode_option_value(code: DhcpOptionCode, value: bytes):
    if code in (DhcpOptionCode.HOST_NAME, DhcpOptionCode.DOMAIN_NAME, DhcpOptionCode.VENDOR_CLASS):
        return value.decode("utf-8", "replace")
    if code in (DhcpOptionCode.REQUESTED_IP, DhcpOptionCode.ROUTER, DhcpOptionCode.SUBNET_MASK):
        if len(value) != 4:
            raise DhcpWireError(f"option {code.name} must be 4 octets")
        return ipaddress.IPv4Address(value)
    if code == DhcpOptionCode.LEASE_TIME:
        if len(value) != 4:
            raise DhcpWireError("lease-time option must be 4 octets")
        return struct.unpack("!I", value)[0]
    if code == DhcpOptionCode.CLIENT_FQDN:
        if len(value) < 3:
            raise DhcpWireError("client-FQDN option too short")
        flags = value[0]
        return ClientFqdn(
            fqdn=value[3:].decode("utf-8", "replace"),
            server_updates=bool(flags & 0x01),
            no_server_update=bool(flags & 0x08),
        )
    if code == DhcpOptionCode.PARAMETER_REQUEST_LIST:
        return [c for c in value]
    return bytes(value)
