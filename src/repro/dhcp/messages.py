"""DHCP message model (the DORA + RELEASE subset)."""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from repro.dhcp.options import DhcpOptionCode, OptionSet


class MessageType(enum.IntEnum):
    """RFC 2132 option 53 values used here."""

    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    DECLINE = 4
    ACK = 5
    NAK = 6
    RELEASE = 7
    INFORM = 8


@dataclass
class DhcpMessage:
    """One DHCP message.

    ``client_id`` stands in for the chaddr/client-identifier pair; the
    measurement never sees it (it stays inside the network), but the
    server keys leases on it.
    """

    message_type: MessageType
    client_id: str
    options: OptionSet = field(default_factory=OptionSet)
    your_address: Optional[ipaddress.IPv4Address] = None
    server_id: Optional[str] = None

    @property
    def host_name(self) -> Optional[str]:
        return self.options.host_name

    @property
    def requested_address(self) -> Optional[ipaddress.IPv4Address]:
        return self.options.get(DhcpOptionCode.REQUESTED_IP)

    @property
    def lease_time(self) -> Optional[int]:
        return self.options.get(DhcpOptionCode.LEASE_TIME)

    def __repr__(self) -> str:
        return (
            f"DhcpMessage({self.message_type.name}, client={self.client_id!r}, "
            f"yiaddr={self.your_address}, host_name={self.host_name!r})"
        )
