"""DHCP substrate.

Implements the client/server mechanics whose interaction with DNS the
paper studies: leases with renewal and expiry, the optional Host Name
(option 12) and Client FQDN (option 81) parameters that carry device
names, DHCPRELEASE vs. silent leave, and the RFC 7844 anonymity profile
that strips identifying options.
"""

from repro.dhcp.errors import DhcpError, PoolExhaustedError, UnknownLeaseError
from repro.dhcp.events import LeaseEvent, LeaseEventKind
from repro.dhcp.lease import Lease, LeaseDatabase, LeaseState
from repro.dhcp.messages import DhcpMessage, MessageType
from repro.dhcp.options import (
    ANONYMITY_PROFILE,
    ClientFqdn,
    DhcpOptionCode,
    OptionSet,
    apply_anonymity_profile,
)
from repro.dhcp.pool import AddressPool
from repro.dhcp.server import DhcpServer
from repro.dhcp.client import DhcpClient, DhcpClientState

__all__ = [
    "ANONYMITY_PROFILE",
    "AddressPool",
    "ClientFqdn",
    "DhcpClient",
    "DhcpClientState",
    "DhcpError",
    "DhcpMessage",
    "DhcpOptionCode",
    "DhcpServer",
    "Lease",
    "LeaseDatabase",
    "LeaseEvent",
    "LeaseEventKind",
    "LeaseState",
    "MessageType",
    "OptionSet",
    "PoolExhaustedError",
    "UnknownLeaseError",
    "apply_anonymity_profile",
]
