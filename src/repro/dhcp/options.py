"""DHCP options, including the identity-carrying ones.

Two options matter to the paper (Section 2.1): the **Host Name** option
(code 12, RFC 2132) that clients commonly fill with their device name
("Brian's iPhone"), and the **Client FQDN** option (code 81, RFC 4702)
through which a client can ask the server to update global DNS on its
behalf.  :data:`ANONYMITY_PROFILE` implements the RFC 7844 mitigation:
strip both, plus other identifying options.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional


class DhcpOptionCode(enum.IntEnum):
    """Option codes used by the reproduction (RFC 2132 / 4702 numbering)."""

    SUBNET_MASK = 1
    ROUTER = 3
    DOMAIN_NAME_SERVER = 6
    HOST_NAME = 12
    DOMAIN_NAME = 15
    REQUESTED_IP = 50
    LEASE_TIME = 51
    MESSAGE_TYPE = 53
    SERVER_IDENTIFIER = 54
    PARAMETER_REQUEST_LIST = 55
    CLIENT_IDENTIFIER = 61
    VENDOR_CLASS = 60
    CLIENT_FQDN = 81


@dataclass(frozen=True)
class ClientFqdn:
    """RFC 4702 Client FQDN option.

    Flags (section 2.1 of RFC 4702):

    * ``server_updates`` (S): client asks the server to perform the
      A-record (forward) update.
    * ``no_server_update`` (N): client asks the server *not* to perform
      any DNS update.  The paper's future-work section asks whether
      servers honour this; :class:`~repro.ipam.system.IpamSystem` makes
      honouring it a policy knob.

    The server always owns the PTR update in RFC 4702, which is exactly
    the record this paper is about.
    """

    fqdn: str
    server_updates: bool = True
    no_server_update: bool = False

    def __post_init__(self) -> None:
        if self.server_updates and self.no_server_update:
            raise ValueError("S and N flags are mutually exclusive (RFC 4702 §2.1)")


class OptionSet:
    """A mapping of option code to decoded value, insertion-ordered."""

    def __init__(self, values: Optional[Dict[DhcpOptionCode, Any]] = None):
        self._values: Dict[DhcpOptionCode, Any] = dict(values or {})

    def set(self, code: DhcpOptionCode, value: Any) -> None:
        self._values[code] = value

    def get(self, code: DhcpOptionCode, default: Any = None) -> Any:
        return self._values.get(code, default)

    def remove(self, code: DhcpOptionCode) -> None:
        self._values.pop(code, None)

    def __contains__(self, code: object) -> bool:
        return code in self._values

    def __iter__(self) -> Iterator[DhcpOptionCode]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OptionSet):
            return NotImplemented
        return self._values == other._values

    def copy(self) -> "OptionSet":
        return OptionSet(self._values)

    # -- identity-carrying convenience accessors -------------------------

    @property
    def host_name(self) -> Optional[str]:
        return self.get(DhcpOptionCode.HOST_NAME)

    @host_name.setter
    def host_name(self, value: Optional[str]) -> None:
        if value is None:
            self.remove(DhcpOptionCode.HOST_NAME)
        else:
            self.set(DhcpOptionCode.HOST_NAME, value)

    @property
    def client_fqdn(self) -> Optional[ClientFqdn]:
        return self.get(DhcpOptionCode.CLIENT_FQDN)

    @client_fqdn.setter
    def client_fqdn(self, value: Optional[ClientFqdn]) -> None:
        if value is None:
            self.remove(DhcpOptionCode.CLIENT_FQDN)
        else:
            self.set(DhcpOptionCode.CLIENT_FQDN, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{code.name}={self._values[code]!r}" for code in self._values)
        return f"OptionSet({inner})"


@dataclass(frozen=True)
class AnonymityProfile:
    """Which identifying options a client withholds (RFC 7844 §3).

    RFC 7844 tells anonymity-seeking clients to omit the Host Name and
    Client FQDN options (or fill them with non-identifying values) and
    to avoid stable client identifiers.
    """

    strip_host_name: bool = True
    strip_client_fqdn: bool = True
    strip_client_identifier: bool = True
    strip_vendor_class: bool = True

    def stripped_codes(self) -> frozenset:
        codes = set()
        if self.strip_host_name:
            codes.add(DhcpOptionCode.HOST_NAME)
        if self.strip_client_fqdn:
            codes.add(DhcpOptionCode.CLIENT_FQDN)
        if self.strip_client_identifier:
            codes.add(DhcpOptionCode.CLIENT_IDENTIFIER)
        if self.strip_vendor_class:
            codes.add(DhcpOptionCode.VENDOR_CLASS)
        return frozenset(codes)


ANONYMITY_PROFILE = AnonymityProfile()


def apply_anonymity_profile(options: OptionSet, profile: AnonymityProfile = ANONYMITY_PROFILE) -> OptionSet:
    """A copy of ``options`` with the profile's identifying options removed."""
    cleaned = options.copy()
    for code in profile.stripped_codes():
        cleaned.remove(code)
    return cleaned
