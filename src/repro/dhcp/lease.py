"""Leases and the server-side lease database.

A lease binds an IP address to a client for a duration (Section 2.1 of
the paper).  Before expiry the client can renew; when the client leaves
it may send a RELEASE ("not always sent, as clients can go out of range,
or users can unplug devices") — otherwise the lease ages out at
``expires_at`` and the address becomes reallocable.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.dhcp.errors import UnknownLeaseError
from repro.dhcp.options import ClientFqdn


class LeaseState(enum.Enum):
    OFFERED = "offered"
    BOUND = "bound"
    RELEASED = "released"
    EXPIRED = "expired"


@dataclass
class Lease:
    """One DHCP lease."""

    address: ipaddress.IPv4Address
    client_id: str
    duration: int
    bound_at: int
    state: LeaseState = LeaseState.BOUND
    host_name: Optional[str] = None
    client_fqdn: Optional[ClientFqdn] = None
    renewals: int = field(default=0)
    last_renewed_at: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"lease duration must be positive, got {self.duration}")
        if self.last_renewed_at < 0:
            self.last_renewed_at = self.bound_at

    @property
    def expires_at(self) -> int:
        """Absolute expiry time: last renewal plus the lease duration."""
        return self.last_renewed_at + self.duration

    @property
    def renewal_due_at(self) -> int:
        """T1, the conventional renewal point at half the lease time."""
        return self.last_renewed_at + self.duration // 2

    def is_active(self, now: int) -> bool:
        return self.state is LeaseState.BOUND and now < self.expires_at

    def renew(self, now: int) -> None:
        if self.state is not LeaseState.BOUND:
            raise ValueError(f"cannot renew a lease in state {self.state}")
        self.last_renewed_at = now
        self.renewals += 1


class LeaseDatabase:
    """Active leases, indexed by address and by client id."""

    def __init__(self) -> None:
        self._by_address: Dict[ipaddress.IPv4Address, Lease] = {}
        self._by_client: Dict[str, Lease] = {}
        self._history: List[Lease] = []
        #: Lower bound on the earliest expiry among stored leases.
        #: Renewals only push expiries later, so the bound can go stale
        #: low (costing one wasted scan) but never stale high.
        self._next_expiry = float("inf")

    def add(self, lease: Lease) -> None:
        if lease.address in self._by_address:
            raise ValueError(f"address {lease.address} already leased")
        existing = self._by_client.get(lease.client_id)
        if existing is not None and existing.state is LeaseState.BOUND:
            raise ValueError(f"client {lease.client_id} already holds a lease")
        self._by_address[lease.address] = lease
        self._by_client[lease.client_id] = lease
        if lease.expires_at < self._next_expiry:
            self._next_expiry = lease.expires_at

    def get_by_address(self, address) -> Lease:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        lease = self._by_address.get(address)
        if lease is None:
            raise UnknownLeaseError(f"no lease for {address}")
        return lease

    def find_by_address(self, address) -> Optional[Lease]:
        if not isinstance(address, ipaddress.IPv4Address):
            address = ipaddress.ip_address(address)
        return self._by_address.get(address)

    def find_by_client(self, client_id: str) -> Optional[Lease]:
        return self._by_client.get(client_id)

    def drop(self, lease: Lease, state: LeaseState) -> None:
        """Retire a lease (on release or expiry) into the history log."""
        if state not in (LeaseState.RELEASED, LeaseState.EXPIRED):
            raise ValueError(f"cannot drop into state {state}")
        if self._by_address.get(lease.address) is not lease:
            raise UnknownLeaseError(f"lease for {lease.address} is not current")
        lease.state = state
        del self._by_address[lease.address]
        if self._by_client.get(lease.client_id) is lease:
            del self._by_client[lease.client_id]
        self._history.append(lease)

    def expired(self, now: int) -> List[Lease]:
        """Active-table leases whose expiry time has passed.

        Expiry sweeps run every few simulated minutes per subnet; the
        ``_next_expiry`` bound turns the common nothing-due sweep into a
        single comparison instead of a full-table scan.  When a scan
        does run, the bound is recomputed over everything still stored
        (expired-but-not-yet-dropped leases keep it at or below ``now``,
        so a caller that never drops them still sees fresh scans).
        """
        if now < self._next_expiry:
            return []
        expired = []
        next_expiry = float("inf")
        for lease in self._by_address.values():
            if now >= lease.expires_at:
                expired.append(lease)
            if lease.expires_at < next_expiry:
                next_expiry = lease.expires_at
        self._next_expiry = next_expiry
        return expired

    def active(self, now: int) -> List[Lease]:
        return [lease for lease in self._by_address.values() if lease.is_active(now)]

    @property
    def history(self) -> List[Lease]:
        return list(self._history)

    def __len__(self) -> int:
        return len(self._by_address)

    def __iter__(self) -> Iterator[Lease]:
        return iter(list(self._by_address.values()))
