"""Lease lifecycle events.

The IPAM bridge (:mod:`repro.ipam`) subscribes to these to drive DNS
updates — the coupling at the heart of the paper.  The event kinds map
directly onto the client-activity phases of Section 6.1:

* ``BOUND`` — phase 1, the client joined and got an address; the PTR
  record may be added now.
* ``RENEWED`` — phase 2, the client is active; the PTR stays unchanged.
* ``RELEASED`` / ``EXPIRED`` — phase 3, the client left (cleanly or
  silently); the PTR may be removed or reverted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dhcp.lease import Lease


class LeaseEventKind(enum.Enum):
    BOUND = "bound"
    RENEWED = "renewed"
    RELEASED = "released"
    EXPIRED = "expired"


@dataclass(frozen=True)
class LeaseEvent:
    """A lease transition at simulation time ``at`` (seconds)."""

    kind: LeaseEventKind
    lease: Lease
    at: int
