"""Exception hierarchy for the DHCP substrate."""


class DhcpError(Exception):
    """Base class for DHCP substrate errors."""


class PoolExhaustedError(DhcpError):
    """No free address is available in the pool."""


class UnknownLeaseError(DhcpError, KeyError):
    """The referenced lease does not exist in the lease database."""
