"""DHCP client behaviour.

A client joins (DISCOVER/REQUEST), renews at T1 while present, and
leaves either *cleanly* (DHCPRELEASE — the paper ties this to the
five-minute peak in Figure 7a) or *silently* (no message; the lease
ages out, producing the hour-multiple peaks).  Identity-carrying
options come from the device's name unless an RFC 7844 anonymity
profile strips them.
"""

from __future__ import annotations

import enum
import ipaddress
from typing import Optional

from repro.dhcp.errors import DhcpError
from repro.dhcp.messages import DhcpMessage, MessageType
from repro.dhcp.options import AnonymityProfile, ClientFqdn, DhcpOptionCode, OptionSet, apply_anonymity_profile
from repro.dhcp.server import DhcpServer


class DhcpClientState(enum.Enum):
    INIT = "init"
    BOUND = "bound"


class DhcpClient:
    """One device's DHCP client."""

    def __init__(
        self,
        client_id: str,
        *,
        host_name: Optional[str] = None,
        client_fqdn: Optional[ClientFqdn] = None,
        sends_release: bool = True,
        anonymity_profile: Optional[AnonymityProfile] = None,
    ):
        self.client_id = client_id
        self.host_name = host_name
        self.client_fqdn = client_fqdn
        self.sends_release = sends_release
        self.anonymity_profile = anonymity_profile
        self.state = DhcpClientState.INIT
        self.address: Optional[ipaddress.IPv4Address] = None
        self.lease_time: Optional[int] = None
        self.bound_at: Optional[int] = None
        self._renew_request: Optional[DhcpMessage] = None
        self._renew_identity: Optional[tuple] = None

    # -- option construction ----------------------------------------------

    def _base_options(self) -> OptionSet:
        options = OptionSet()
        if self.host_name is not None:
            options.host_name = self.host_name
        if self.client_fqdn is not None:
            options.client_fqdn = self.client_fqdn
        options.set(DhcpOptionCode.CLIENT_IDENTIFIER, self.client_id)
        if self.anonymity_profile is not None:
            options = apply_anonymity_profile(options, self.anonymity_profile)
        return options

    # -- exchanges ----------------------------------------------------------

    def join(self, server: DhcpServer, now: int) -> Optional[ipaddress.IPv4Address]:
        """Run the full DORA exchange; returns the bound address or None."""
        discover = DhcpMessage(MessageType.DISCOVER, self.client_id, options=self._base_options())
        offer = server.handle(discover, now)
        if offer is None or offer.message_type is not MessageType.OFFER:
            return None
        options = self._base_options()
        options.set(DhcpOptionCode.REQUESTED_IP, offer.your_address)
        request = DhcpMessage(MessageType.REQUEST, self.client_id, options=options)
        ack = server.handle(request, now)
        if ack is None or ack.message_type is not MessageType.ACK:
            return None
        self.state = DhcpClientState.BOUND
        self.address = ack.your_address
        self.lease_time = ack.lease_time
        self.bound_at = now
        return self.address

    def renew(self, server: DhcpServer, now: int) -> bool:
        """Renew the current lease in place; returns success."""
        if self.state is not DhcpClientState.BOUND:
            raise DhcpError("cannot renew while not bound")
        # The renew REQUEST carries only identity-derived options, so it
        # is byte-identical between renewals unless the device changed
        # its name or profile mid-lease; the server never mutates or
        # retains the message, making reuse safe.
        identity = (self.host_name, self.client_fqdn, self.anonymity_profile)
        request = self._renew_request
        if request is None or self._renew_identity != identity:
            request = DhcpMessage(
                MessageType.REQUEST, self.client_id, options=self._base_options()
            )
            self._renew_request = request
            self._renew_identity = identity
        ack = server.handle(request, now)
        if ack is None or ack.message_type is not MessageType.ACK:
            self.state = DhcpClientState.INIT
            self.address = None
            return False
        self.address = ack.your_address
        return True

    def leave(self, server: DhcpServer, now: int) -> bool:
        """Leave the network; returns True if a RELEASE was sent.

        Clients configured with ``sends_release=False`` just go silent
        (out of range / unplugged) and their lease ages out server-side.
        """
        if self.state is not DhcpClientState.BOUND:
            return False
        sent = False
        if self.sends_release:
            release = DhcpMessage(MessageType.RELEASE, self.client_id, options=self._base_options())
            server.handle(release, now)
            sent = True
        self.state = DhcpClientState.INIT
        self.address = None
        self.lease_time = None
        self.bound_at = None
        return sent

    @property
    def effective_host_name(self) -> Optional[str]:
        """The Host Name the server actually sees from this client."""
        return self._base_options().host_name

    def __repr__(self) -> str:
        return f"DhcpClient({self.client_id!r}, state={self.state.value}, address={self.address})"
