"""The DHCP server state machine.

Implements the DORA exchange, renewals, RELEASE handling and an expiry
sweep.  Every lease transition is published as a
:class:`~repro.dhcp.events.LeaseEvent` so that an IPAM system (or any
listener) can mirror it into DNS — which is exactly the automated
coupling the paper investigates.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, List, Optional

from repro.dhcp.errors import DhcpError, PoolExhaustedError
from repro.dhcp.events import LeaseEvent, LeaseEventKind
from repro.dhcp.lease import Lease, LeaseDatabase, LeaseState
from repro.dhcp.messages import DhcpMessage, MessageType
from repro.dhcp.options import DhcpOptionCode, OptionSet
from repro.dhcp.pool import AddressPool

DEFAULT_LEASE_TIME = 3600

LeaseListener = Callable[[LeaseEvent], None]
LeaseBatchListener = Callable[[List[LeaseEvent]], None]


class DhcpServer:
    """A DHCP server over one address pool.

    The ``lease_time`` default of one hour matches the paper's
    observation that leases "often set to an hour for a fast turn-over
    rate" produce the hour-multiple peaks of Figure 7a.
    """

    def __init__(
        self,
        pool: AddressPool,
        *,
        server_id: str = "dhcp.example.net",
        lease_time: int = DEFAULT_LEASE_TIME,
    ):
        if lease_time <= 0:
            raise ValueError("lease_time must be positive")
        self.pool = pool
        self.server_id = server_id
        self.lease_time = lease_time
        self.leases = LeaseDatabase()
        self._listeners: List[LeaseListener] = []
        self._batch_listeners: List[Optional[LeaseBatchListener]] = []
        self.messages_processed = 0

    def subscribe(
        self,
        listener: LeaseListener,
        *,
        batch: Optional[LeaseBatchListener] = None,
    ) -> None:
        """Register a lease-event listener (e.g. an IPAM system).

        A listener may also supply a ``batch`` handler; tick-level
        sweeps (``expire_leases``) then deliver the whole tick's events
        in one call instead of one call per lease.
        """
        self._listeners.append(listener)
        self._batch_listeners.append(batch)

    def _publish(self, kind: LeaseEventKind, lease: Lease, at: int) -> None:
        event = LeaseEvent(kind, lease, at)
        for listener in self._listeners:
            listener(event)

    def _publish_batch(self, kind: LeaseEventKind, leases: List[Lease], at: int) -> None:
        """One tick's transitions as a batch, in lease order.

        Batch-capable listeners get the full event list; plain
        callables still see each event individually, in the same order.
        """
        if not leases:
            return
        events = [LeaseEvent(kind, lease, at) for lease in leases]
        for listener, batch in zip(self._listeners, self._batch_listeners):
            if batch is not None:
                batch(events)
            else:
                for event in events:
                    listener(event)

    # -- protocol handlers ------------------------------------------------

    def handle(self, message: DhcpMessage, now: int) -> Optional[DhcpMessage]:
        """Dispatch one client message; RELEASE gets no reply."""
        self.messages_processed += 1
        if message.message_type is MessageType.DISCOVER:
            return self.handle_discover(message, now)
        if message.message_type is MessageType.REQUEST:
            return self.handle_request(message, now)
        if message.message_type is MessageType.RELEASE:
            self.handle_release(message, now)
            return None
        raise DhcpError(f"server cannot handle {message.message_type.name}")

    def handle_discover(self, message: DhcpMessage, now: int) -> Optional[DhcpMessage]:
        """DISCOVER -> OFFER (or silence when the pool is exhausted)."""
        existing = self.leases.find_by_client(message.client_id)
        if existing is not None and existing.is_active(now):
            offered = existing.address
        else:
            try:
                offered = self.pool.allocate(message.client_id, message.requested_address)
            except PoolExhaustedError:
                return None
            # The offer itself does not bind; return the address until REQUEST.
            self.pool.release(offered)
        options = OptionSet()
        options.set(DhcpOptionCode.LEASE_TIME, self.lease_time)
        options.set(DhcpOptionCode.SERVER_IDENTIFIER, self.server_id)
        return DhcpMessage(
            MessageType.OFFER,
            message.client_id,
            options=options,
            your_address=offered,
            server_id=self.server_id,
        )

    def handle_request(self, message: DhcpMessage, now: int) -> Optional[DhcpMessage]:
        """REQUEST -> ACK, binding or renewing a lease; NAK on conflict."""
        existing = self.leases.find_by_client(message.client_id)
        requested = message.requested_address

        if existing is not None and existing.is_active(now):
            if requested is not None and requested != existing.address:
                return self._nak(message)
            existing.renew(now)
            if message.host_name is not None:
                existing.host_name = message.host_name
            if message.options.client_fqdn is not None:
                existing.client_fqdn = message.options.client_fqdn
            self._publish(LeaseEventKind.RENEWED, existing, now)
            return self._ack(message, existing)

        if existing is not None:
            # Stale binding for this client: expire it before rebinding.
            self._expire_lease(existing, now)

        try:
            address = self.pool.allocate(message.client_id, requested)
        except PoolExhaustedError:
            return self._nak(message)
        if requested is not None and address != ipaddress.ip_address(requested):
            # Requested address unavailable; RFC behaviour is to NAK so
            # the client restarts with DISCOVER.
            self.pool.release(address)
            return self._nak(message)
        lease = Lease(
            address=address,
            client_id=message.client_id,
            duration=message.lease_time or self.lease_time,
            bound_at=now,
            host_name=message.host_name,
            client_fqdn=message.options.client_fqdn,
        )
        self.leases.add(lease)
        self._publish(LeaseEventKind.BOUND, lease, now)
        return self._ack(message, lease)

    def handle_release(self, message: DhcpMessage, now: int) -> None:
        """RELEASE: drop the lease immediately and tell listeners."""
        lease = self.leases.find_by_client(message.client_id)
        if lease is None:
            return
        self.leases.drop(lease, LeaseState.RELEASED)
        self.pool.release(lease.address)
        self._publish(LeaseEventKind.RELEASED, lease, now)

    def expire_leases(self, now: int) -> List[Lease]:
        """Sweep: retire every lease whose lifetime has run out.

        Real servers do this continuously; a simulation should call it
        at least once per lease-time granularity (the reactive
        measurement's five-minute probe interval is plenty).
        """
        expired = self.leases.expired(now)
        if not expired:
            return expired
        for lease in expired:
            self.leases.drop(lease, LeaseState.EXPIRED)
            self.pool.release(lease.address)
        self._publish_batch(LeaseEventKind.EXPIRED, expired, now)
        return expired

    def _expire_lease(self, lease: Lease, now: int) -> None:
        self.leases.drop(lease, LeaseState.EXPIRED)
        self.pool.release(lease.address)
        self._publish(LeaseEventKind.EXPIRED, lease, now)

    # -- reply builders ---------------------------------------------------

    def _ack(self, message: DhcpMessage, lease: Lease) -> DhcpMessage:
        options = OptionSet()
        options.set(DhcpOptionCode.LEASE_TIME, lease.duration)
        options.set(DhcpOptionCode.SERVER_IDENTIFIER, self.server_id)
        return DhcpMessage(
            MessageType.ACK,
            message.client_id,
            options=options,
            your_address=lease.address,
            server_id=self.server_id,
        )

    def _nak(self, message: DhcpMessage) -> DhcpMessage:
        return DhcpMessage(MessageType.NAK, message.client_id, server_id=self.server_id)

    def __repr__(self) -> str:
        return f"DhcpServer({self.server_id!r}, {len(self.leases)} active leases)"
