"""Dynamic address pools.

A pool hands out addresses from an IPv4 range.  Allocation is *sticky*:
a returning client is offered its previous address when still free,
which is what real servers do and what makes the paper's device-level
tracking (Section 7.1: stable colour-coded IPs per device) possible.
"""

from __future__ import annotations

import ipaddress
from collections import deque
from typing import Deque, Dict, Iterable, Optional, Set, Union

from repro.dhcp.errors import PoolExhaustedError

Prefix = Union[str, ipaddress.IPv4Network]


class AddressPool:
    """Allocatable addresses within one prefix.

    ``reserved`` addresses (network/broadcast, gateways, static hosts)
    are never handed out.
    """

    def __init__(
        self,
        prefix: Prefix,
        *,
        reserved: Iterable = (),
        exclude_network_and_broadcast: bool = True,
    ):
        self.prefix = ipaddress.IPv4Network(prefix)
        self._reserved: Set[ipaddress.IPv4Address] = {
            ipaddress.ip_address(address) for address in reserved
        }
        if exclude_network_and_broadcast and self.prefix.num_addresses > 2:
            self._reserved.add(self.prefix.network_address)
            self._reserved.add(self.prefix.broadcast_address)
        self._allocated: Set[ipaddress.IPv4Address] = set()
        self._last_address: Dict[str, ipaddress.IPv4Address] = {}
        # FIFO free list: fresh addresses go out in ascending order and
        # released addresses are reused least-recently-used, which keeps a
        # returning client's sticky address free for as long as possible.
        self._free: Deque[ipaddress.IPv4Address] = deque(
            address for address in self.prefix if address not in self._reserved
        )

    @property
    def size(self) -> int:
        """Number of allocatable addresses."""
        return self.prefix.num_addresses - len(self._reserved)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    @property
    def free_count(self) -> int:
        return self.size - len(self._allocated)

    def utilization(self) -> float:
        if self.size == 0:
            return 0.0
        return len(self._allocated) / self.size

    def is_free(self, address) -> bool:
        ip = ipaddress.ip_address(address)
        return ip in self.prefix and ip not in self._reserved and ip not in self._allocated

    def allocate(self, client_id: str, requested: Optional[object] = None) -> ipaddress.IPv4Address:
        """Allocate an address for ``client_id``.

        Preference order: the explicitly requested address, the client's
        previous address, then the lowest free address.  Raises
        :class:`PoolExhaustedError` when nothing is free.
        """
        for candidate in (requested, self._last_address.get(client_id)):
            if candidate is None:
                continue
            ip = ipaddress.ip_address(candidate)
            if self.is_free(ip):
                self._take(ip)
                self._last_address[client_id] = ip
                return ip
        while self._free:
            ip = self._free.popleft()
            if ip not in self._allocated:
                self._allocated.add(ip)
                self._last_address[client_id] = ip
                return ip
        raise PoolExhaustedError(f"no free address in {self.prefix}")

    def _take(self, ip: ipaddress.IPv4Address) -> None:
        self._allocated.add(ip)

    def release(self, address) -> None:
        """Return an address to the pool (idempotent)."""
        ip = ipaddress.ip_address(address)
        if ip in self._allocated:
            self._allocated.discard(ip)
            self._free.append(ip)

    def __contains__(self, address: object) -> bool:
        try:
            return ipaddress.ip_address(address) in self.prefix  # type: ignore[arg-type]
        except ValueError:
            return False

    def __repr__(self) -> str:
        return f"AddressPool({self.prefix}, {self.allocated_count}/{self.size} allocated)"
